"""ASCII rendering of ``repro-trace/v1`` documents.

The ``repro trace <file>`` viewer: a span tree with durations and key
attributes, a where-did-the-time-go aggregate per span name, a
``convergence:`` section summarizing every ``repro-convergence/v1``
payload in the tree (per-kernel fit counts, iteration quantiles, and an
objective-trajectory sparkline), the top-N slowest jobs as a horizontal
bar chart (drawn with the :mod:`repro.experiments.ascii_plot`
machinery), and a manifest summary when the document carries one.
"""

from __future__ import annotations

import math
import statistics
import time
from typing import Any

from repro.exceptions import ValidationError
from repro.telemetry.convergence import (
    collect_payloads,
    payload_scalar,
    trajectory_values,
)
from repro.telemetry.spans import Span

__all__ = ["render_trace", "format_seconds", "format_bytes", "sparkline"]

#: Glyph ramp shared by every sparkline in the telemetry reports
#: (viewer, run history, watch dashboard): low value = low glyph.
_SPARK_LEVELS = " .:-=+*#%"

#: Span attributes surfaced inline in the tree view, in display order.
_TREE_ATTRS = (
    "task",
    "case",
    "attack",
    "cached",
    "worker",
    "queue_wait",
    "iterations",
    "error",
)


def format_seconds(seconds: float) -> str:
    """Human-scaled duration: ``1.23s`` / ``45.6ms`` / ``789us``."""
    seconds = float(seconds)
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def format_bytes(count: float) -> str:
    """Human-scaled byte count: ``1.5GiB`` / ``23.4MiB`` / ``512B``."""
    count = float(count)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(count) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{count:.0f}B"
            return f"{count:.1f}{unit}"
        count /= 1024.0
    raise AssertionError("unreachable")


def sparkline(values: list[float], *, width: int = 24) -> str:
    """One-line sparkline of a numeric series.

    Values map linearly onto the glyph ramp between the series' finite
    min and max; non-finite entries render as ``!`` so a NaN objective
    is visible instead of silently scaled away.  Series longer than
    ``width`` are strided down to ``width`` points.

    Parameters
    ----------
    values:
        The series; an empty list yields an empty string.
    width:
        Maximum number of glyphs.
    """
    if not values:
        return ""
    if width >= 1 and len(values) > width:
        step = len(values) / width
        values = [values[int(index * step)] for index in range(width)]
    finite = [value for value in values if math.isfinite(value)]
    if not finite:
        return "!" * len(values)
    low, high = min(finite), max(finite)
    span = high - low
    top = len(_SPARK_LEVELS) - 1
    glyphs = []
    for value in values:
        if not math.isfinite(value):
            glyphs.append("!")
        elif span <= 0:
            glyphs.append(_SPARK_LEVELS[0])
        else:
            glyphs.append(_SPARK_LEVELS[round((value - low) / span * top)])
    return "".join(glyphs)


def _payload_spark(payload: dict[str, Any]) -> str:
    """Trajectory sparkline for one payload: objective, else delta,
    else condition; ``-`` when the payload carries no trajectory at all
    (a zero-iteration fit, or a summary-only future version)."""
    for field in ("objective", "delta", "condition"):
        series = trajectory_values(payload, field)
        if series:
            return sparkline(series)
    return "-"


def _render_convergence(payloads: list[dict[str, Any]]) -> list[str]:
    """The ``convergence:`` section from collected payloads, if any.

    One row per kernel: fit count, converged tally (``-`` when the
    kernel reports no binary verdict), median/max iterations-to-finish,
    total rejections, the last fit's final objective, and that fit's
    trajectory sparkline.
    """
    if not payloads:
        return []
    by_kernel: dict[str, list[dict[str, Any]]] = {}
    for payload in payloads:
        by_kernel.setdefault(str(payload.get("kernel", "?")), []).append(
            payload
        )
    lines = ["", "convergence:"]
    lines.append(
        f"  {'kernel':<20} {'fits':>5} {'conv':>7} {'iter med/max':>13} "
        f"{'rej':>6} {'final obj':>12}  trajectory"
    )
    for kernel in sorted(by_kernel):
        group = by_kernel[kernel]
        verdicts = [
            payload["converged"]
            for payload in group
            if isinstance(payload.get("converged"), bool)
        ]
        conv = f"{sum(verdicts)}/{len(verdicts)}" if verdicts else "-"
        iterations = [
            payload["iterations"]
            for payload in group
            if isinstance(payload.get("iterations"), int)
        ]
        if iterations:
            med = round(statistics.median(iterations))
            iter_text = f"{med}/{max(iterations)}"
        else:
            iter_text = "-"
        rejections = sum(
            payload["rejections"]
            for payload in group
            if isinstance(payload.get("rejections"), int)
        )
        last = group[-1]
        final = payload_scalar(last, "final_objective")
        final_text = f"{final:.6g}" if final is not None else "-"
        lines.append(
            f"  {kernel:<20} {len(group):>5} {conv:>7} {iter_text:>13} "
            f"{rejections:>6} {final_text:>12}  {_payload_spark(last)}"
        )
    return lines


def _render_resources(gauges: dict[str, Any]) -> list[str]:
    """The ``resources:`` section from ``resource.*`` gauges, if any.

    Lines: parent RSS peak / CPU, worker aggregate, shm peak, then a
    per-worker table keyed by the same PIDs the ``engine.job`` spans
    carry in their ``worker`` attribute.
    """
    resource = {
        name[len("resource."):]: value
        for name, value in gauges.items()
        if name.startswith("resource.")
    }
    if not resource:
        return []
    lines = ["", "resources:"]
    if "rss_peak_bytes" in resource:
        cpu = resource.get("cpu_seconds")
        lines.append(
            f"  parent   rss peak {format_bytes(resource['rss_peak_bytes'])}"
            + (f"  cpu {format_seconds(cpu)}" if cpu is not None else "")
        )
    if "workers.rss_peak_bytes" in resource:
        cpu = resource.get("workers.cpu_seconds")
        lines.append(
            "  workers  rss peak "
            f"{format_bytes(resource['workers.rss_peak_bytes'])}"
            + (f"  cpu {format_seconds(cpu)}" if cpu is not None else "")
        )
    if "shm_peak_bytes" in resource:
        lines.append(
            "  shm      peak "
            f"{format_bytes(resource['shm_peak_bytes'])}"
            f"  (live {format_bytes(resource.get('shm_bytes', 0.0))})"
        )
    workers: dict[str, dict[str, float]] = {}
    for name, value in resource.items():
        if name.startswith("worker."):
            pid, _, field = name[len("worker."):].partition(".")
            workers.setdefault(pid, {})[field] = float(value)
    if workers:
        lines.append(f"  {'worker pid':<12} {'rss peak':>10} {'cpu':>9}")
        for pid in sorted(workers, key=lambda p: int(p) if p.isdigit() else 0):
            stats = workers[pid]
            rss = stats.get("rss_peak_bytes", 0.0)
            cpu = stats.get("cpu_seconds", 0.0)
            lines.append(
                f"  {pid:<12} {format_bytes(rss):>10} "
                f"{format_seconds(cpu):>9}"
            )
    return lines


def _format_attr(key: str, value: Any) -> str:
    if key == "queue_wait" and isinstance(value, float):
        return f"queue_wait={format_seconds(value)}"
    if key == "task" and isinstance(value, str):
        return f"task={value.rsplit(':', 1)[-1]}"
    return f"{key}={value}"


def _render_span(
    span: Span,
    lines: list[str],
    depth: int,
    total: float,
    max_depth: int | None,
) -> None:
    if max_depth is not None and depth > max_depth:
        return
    share = f" {span.duration / total * 100.0:5.1f}%" if total > 0 else ""
    attrs = "  ".join(
        _format_attr(key, span.attrs[key])
        for key in _TREE_ATTRS
        if key in span.attrs
    )
    hidden = (
        max_depth is not None and depth == max_depth and span.children
    )
    suffix = f"  (+{len(list(span.iter_spans())) - 1} hidden)" if hidden else ""
    lines.append(
        f"  {'  ' * depth}{span.name:<{max(30 - 2 * depth, 8)}} "
        f"{format_seconds(span.duration):>9}{share}"
        + (f"  [{attrs}]" if attrs else "")
        + suffix
    )
    if not hidden:
        for child in span.children:
            _render_span(child, lines, depth + 1, total, max_depth)


def _aggregate_by_name(roots: list[Span]) -> list[tuple[str, int, float]]:
    """``(name, call count, total self-time)`` rows, slowest first."""
    totals: dict[str, list[float]] = {}
    for root in roots:
        for span in root.iter_spans():
            entry = totals.setdefault(span.name, [0, 0.0])
            entry[0] += 1
            entry[1] += span.self_time()
    return sorted(
        ((name, int(count), total) for name, (count, total) in totals.items()),
        key=lambda row: row[2],
        reverse=True,
    )


def _job_label(span: Span) -> str:
    task = span.attrs.get("task", "")
    task = task.rsplit(":", 1)[-1] if isinstance(task, str) else "job"
    path = span.attrs.get("seed_path")
    key = span.attrs.get("key", "")
    suffix = f"{tuple(path)}" if isinstance(path, list) else str(key)[:8]
    return f"{task}{suffix}"


def render_trace(
    payload: dict[str, Any],
    *,
    top: int = 10,
    max_depth: int | None = None,
    width: int = 48,
) -> str:
    """Render a trace document as a multi-section ASCII report.

    Parameters
    ----------
    payload:
        A (validated) ``repro-trace/v1`` document.
    top:
        How many slowest jobs the bar chart shows.
    max_depth:
        Truncate the span tree below this depth (``None`` = full tree).
    width:
        Bar-chart width in characters.
    """
    # Imported here, not at module level: ascii_plot pulls in the
    # experiment-series stack, which telemetry must not require.
    from repro.experiments.ascii_plot import bar_chart

    if not isinstance(payload, dict):
        raise ValidationError(
            f"trace payload must be a dict, got {type(payload).__name__}"
        )
    roots = [Span.from_dict(span) for span in payload.get("spans", [])]
    created = payload.get("created_unix")
    lines = [f"trace {payload.get('schema', '?')}"]
    if isinstance(created, (int, float)):
        stamp = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(float(created))
        )
        lines[0] += f"  (recorded {stamp})"

    counters = payload.get("counters") or {}
    if counters:
        lines.append(
            "counters: "
            + "  ".join(
                f"{name}={value:g}" for name, value in sorted(counters.items())
            )
        )
    gauges = payload.get("gauges") or {}
    # resource.* gauges get their own formatted section below; dumping
    # dozens of raw byte counts onto the gauges line would drown it.
    plain_gauges = {
        name: value
        for name, value in gauges.items()
        if not name.startswith("resource.")
    }
    if plain_gauges:
        lines.append(
            "gauges:   "
            + "  ".join(
                f"{name}={value:g}"
                for name, value in sorted(plain_gauges.items())
            )
        )
    lines.extend(_render_resources(gauges))

    if not roots:
        lines.append("")
        lines.append("(no spans recorded)")
    for root in roots:
        lines.append("")
        _render_span(root, lines, 0, root.duration, max_depth)

    aggregate = _aggregate_by_name(roots)
    if aggregate:
        lines.append("")
        lines.append("self-time by span name:")
        lines.append(f"  {'span':<28} {'calls':>6} {'total':>10}")
        for name, count, total in aggregate:
            lines.append(
                f"  {name:<28} {count:>6} {format_seconds(total):>10}"
            )

    # Convergence payloads live in the *serialized* attrs, so they are
    # collected from the raw span dicts rather than the Span objects.
    payloads = [
        found
        for span in payload.get("spans", [])
        for found in collect_payloads(span)
    ]
    lines.extend(_render_convergence(payloads))

    jobs = [
        span
        for root in roots
        for span in root.iter_spans()
        if span.name == "engine.job"
    ]
    if jobs and top > 0:
        slowest = sorted(jobs, key=lambda s: s.duration, reverse=True)[:top]
        lines.append("")
        lines.append(f"top {len(slowest)} slowest jobs:")
        lines.append(
            bar_chart(
                [_job_label(span) for span in slowest],
                [span.duration for span in slowest],
                width=width,
                value_format=format_seconds,
            )
        )

    manifest = payload.get("manifest")
    if isinstance(manifest, dict):
        lines.append("")
        lines.append("manifest:")
        spec = manifest.get("spec") or {}
        if spec:
            lines.append(
                f"  spec {spec.get('name')!r}  hash {str(spec.get('hash'))[:12]}  "
                f"points={spec.get('n_points')} trials={spec.get('trials')} "
                f"seed={spec.get('seed')}"
            )
        revision = manifest.get("git_revision")
        packages = manifest.get("packages") or {}
        lines.append(
            f"  git {str(revision)[:12] if revision else '(none)'}  "
            + "  ".join(
                f"{name} {version}"
                for name, version in sorted(packages.items())
            )
        )
        table = manifest.get("jobs") or []
        timed = [job for job in table if "duration" in job]
        if table:
            cached = sum(1 for job in timed if job.get("cached"))
            lines.append(
                f"  jobs: {len(table)} total, {len(timed)} timed, "
                f"{cached} served from cache"
            )
    return "\n".join(lines)
