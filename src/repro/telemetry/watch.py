"""Live run dashboard: tail a ``repro-metrics/v1`` ring in the terminal.

``repro watch run-metrics.json`` renders the newest snapshot of the
metrics ring the exporter rewrites every tick — progress bar, job rate
and ETA, worker RSS, and a per-kernel convergence table fed by the
``kernel.*`` heartbeat gauges the iteration trackers publish — then
redraws on an interval until the ring stops advancing.  Everything is
derived from the on-disk document, so the dashboard attaches to any
running sweep (same host or a copied file) without touching the run.

:func:`render_watch` is a pure function of the document (plus an
explicit "now" timestamp), which is what the tests pin and what
``repro watch --once`` prints for CI logs; :func:`watch_loop` adds the
redraw loop around it.  Clock reads flow through the sanctioned
:mod:`repro.telemetry._clock` shims (the ``wall-clock`` check rule
covers this module).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Any, TextIO

from repro.exceptions import ValidationError
from repro.telemetry._clock import wall_now
from repro.telemetry.viewer import format_bytes, format_seconds, sparkline

__all__ = ["render_watch", "watch_loop"]

#: A ring whose ``updated_unix`` is older than this many seconds is
#: labelled stale (the run finished, died, or the file is a copy).
STALE_AFTER = 10.0

#: Progress bar width in characters.
_BAR_WIDTH = 30


def _latest(document: dict[str, Any]) -> dict[str, Any]:
    """The newest snapshot in the ring (empty dict when none)."""
    snapshots = document.get("snapshots")
    if isinstance(snapshots, list) and snapshots:
        last = snapshots[-1]
        if isinstance(last, dict):
            return last
    return {}


def _progress_lines(document: dict[str, Any]) -> list[str]:
    """Progress bar, rate + ETA, and the rate trend over the ring."""
    latest = _latest(document)
    progress = latest.get("progress")
    if not isinstance(progress, dict):
        return []
    total = float(progress.get("total", 0.0))
    completed = float(progress.get("completed", 0.0))
    cached = float(progress.get("cached", 0.0))
    fraction = min(max(completed / total, 0.0), 1.0) if total > 0 else 0.0
    filled = round(fraction * _BAR_WIDTH)
    bar = "#" * filled + "." * (_BAR_WIDTH - filled)
    line = (
        f"  [{bar}] {completed:.0f}/{total:.0f} jobs "
        f"({cached:.0f} cached)"
    )
    rate = progress.get("rate_jobs_per_s")
    if isinstance(rate, (int, float)):
        line += f"  {float(rate):.1f} jobs/s"
    eta = progress.get("eta_s")
    if isinstance(eta, (int, float)) and completed < total:
        line += f"  eta {format_seconds(float(eta))}"
    lines = ["", "progress:", line]
    rates = [
        float(snap["progress"]["rate_jobs_per_s"])
        for snap in document.get("snapshots", [])
        if isinstance(snap, dict)
        and isinstance(snap.get("progress"), dict)
        and isinstance(
            snap["progress"].get("rate_jobs_per_s"), (int, float)
        )
    ]
    if rates:
        lines.append(f"  rate trend  {sparkline(rates, width=_BAR_WIDTH)}")
    if total > 0 and completed >= total:
        lines.append("  run complete")
    return lines


def _resource_lines(gauges: dict[str, Any]) -> list[str]:
    """Parent / worker RSS and CPU from the ``resource.*`` gauges."""
    lines: list[str] = []
    rss = gauges.get("resource.rss_bytes")
    peak = gauges.get("resource.rss_peak_bytes")
    if isinstance(peak, (int, float)):
        live = (
            f"{format_bytes(float(rss))} live, "
            if isinstance(rss, (int, float))
            else ""
        )
        lines.append(f"  parent   rss {live}peak {format_bytes(float(peak))}")
    workers_peak = gauges.get("resource.workers.rss_peak_bytes")
    if isinstance(workers_peak, (int, float)):
        count = sum(
            1
            for name in gauges
            if name.startswith("resource.worker.")
            and name.endswith(".rss_peak_bytes")
        )
        suffix = f" across {count} worker(s)" if count else ""
        lines.append(
            f"  workers  rss peak {format_bytes(float(workers_peak))}{suffix}"
        )
    if lines:
        lines = ["", "resources:"] + lines
    return lines


def _kernel_rows(
    counters: dict[str, Any], gauges: dict[str, Any]
) -> dict[str, dict[str, float]]:
    """Fold ``kernel.<name>.<field>`` metrics into per-kernel rows."""
    rows: dict[str, dict[str, float]] = {}
    for source in (counters, gauges):
        for name, value in source.items():
            if not name.startswith("kernel.") or not isinstance(
                value, (int, float)
            ):
                continue
            kernel, _, field = name[len("kernel."):].rpartition(".")
            if kernel and field:
                rows.setdefault(kernel, {})[field] = float(value)
    return rows


def _objective_series(
    document: dict[str, Any], kernel: str
) -> list[float]:
    """One kernel's objective-gauge series across the ring."""
    name = f"kernel.{kernel}.objective"
    series: list[float] = []
    for snap in document.get("snapshots", []):
        if not isinstance(snap, dict):
            continue
        snap_gauges = snap.get("gauges")
        if isinstance(snap_gauges, dict):
            value = snap_gauges.get(name)
            if isinstance(value, (int, float)):
                series.append(float(value))
    return series


def _kernel_lines(document: dict[str, Any]) -> list[str]:
    """The per-kernel convergence table from the heartbeat metrics."""
    latest = _latest(document)
    counters = latest.get("counters")
    gauges = latest.get("gauges")
    rows = _kernel_rows(
        counters if isinstance(counters, dict) else {},
        gauges if isinstance(gauges, dict) else {},
    )
    if not rows:
        return []
    lines = ["", "kernels:"]
    lines.append(
        f"  {'kernel':<20} {'fits':>6} {'iter':>6} {'rej':>6} "
        f"{'objective':>12} {'state':>10}  trend"
    )
    for kernel in sorted(rows):
        row = rows[kernel]
        fits = row.get("fits", 0.0)
        iterations = row.get("iterations", 0.0)
        rejections = row.get("rejections", 0.0)
        objective = row.get("objective")
        objective_text = (
            f"{objective:.6g}" if objective is not None else "-"
        )
        if row.get("nonfinite", 0.0) > 0:
            state = "NONFINITE"
        elif row.get("nonconverged", 0.0) > 0:
            state = "DIVERGED"
        elif row.get("converged") == 0.0:  # repro: ignore[float-eq] the converged gauge is written as exactly 0.0 or 1.0
            state = "fitting"
        else:
            state = "ok"
        trend = sparkline(
            _objective_series(document, kernel), width=_BAR_WIDTH
        )
        lines.append(
            f"  {kernel:<20} {fits:>6.0f} {iterations:>6.0f} "
            f"{rejections:>6.0f} {objective_text:>12} {state:>10}  {trend}"
        )
    return lines


def render_watch(
    document: dict[str, Any], *, now: float | None = None
) -> str:
    """Render one frame of the watch dashboard from a ring document.

    Pure: the output depends only on ``document`` and ``now`` (the
    wall-clock timestamp used for the staleness label; pass a fixed
    value for deterministic output, as the tests and ``--once`` CI
    renders do).

    Parameters
    ----------
    document:
        A parsed ``repro-metrics/v1`` ring document.
    now:
        Wall-clock "now" in epoch seconds; defaults to the current
        time via the sanctioned clock shim.
    """
    if not isinstance(document, dict):
        raise ValidationError(
            f"metrics document must be a dict, got {type(document).__name__}"
        )
    stamp = wall_now() if now is None else float(now)
    snapshots = document.get("snapshots")
    count = len(snapshots) if isinstance(snapshots, list) else 0
    header = f"repro watch  {document.get('schema', '?')}  ({count} snapshot(s)"
    updated = document.get("updated_unix")
    if isinstance(updated, (int, float)):
        age = max(stamp - float(updated), 0.0)
        header += f", updated {format_seconds(age)} ago"
        if age > STALE_AFTER:
            header += ", stale"
    header += ")"
    lines = [header]
    lines.extend(_progress_lines(document))
    latest = _latest(document)
    gauges = latest.get("gauges")
    if isinstance(gauges, dict):
        lines.extend(_resource_lines(gauges))
    lines.extend(_kernel_lines(document))
    if count == 0:
        lines.append("  (no snapshots yet)")
    return "\n".join(lines)


def watch_loop(
    path: str | os.PathLike[str],
    stream: TextIO,
    *,
    interval: float = 1.0,
    once: bool = False,
) -> int:
    """Tail a metrics ring file and redraw the dashboard.

    Parameters
    ----------
    path:
        The ``repro-metrics/v1`` file an exporter is rewriting (or has
        finished rewriting — a finished ring renders its final state).
    stream:
        Output target; ANSI clear-screen codes are only emitted when it
        reports being a terminal.
    interval:
        Seconds between redraws.
    once:
        Render a single frame and return (the CI mode).

    Returns
    -------
    int
        Process exit code: 0 normally, 1 when the file never became
        readable.
    """
    if not isinstance(interval, (int, float)) or interval <= 0:
        raise ValidationError(
            f"watch interval must be a positive number, got {interval!r}"
        )
    target = pathlib.Path(path)
    is_tty = bool(getattr(stream, "isatty", lambda: False)())
    while True:
        try:
            document = json.loads(target.read_text())
        except FileNotFoundError:
            if once:
                stream.write(f"error: no such metrics file: {target}\n")
                return 1
            document = None
        except (OSError, json.JSONDecodeError) as exc:
            if once:
                stream.write(f"error: cannot read metrics ring: {exc}\n")
                return 1
            # Mid-rewrite; keep the previous frame and retry next tick.
            document = None
        if document is not None:
            frame = render_watch(document)
            if is_tty and not once:
                stream.write("\x1b[2J\x1b[H")
            stream.write(frame + "\n")
            stream.flush()
            if once:
                return 0
        try:
            time.sleep(float(interval))
        except KeyboardInterrupt:
            return 0
