"""Live metrics export: periodic ``repro-metrics/v1`` + OpenMetrics files.

While a run executes, a :class:`MetricsExporter` thread periodically
snapshots the active :class:`~repro.telemetry.recorder.Recorder` —
every counter and gauge, plus engine progress/ETA derived from the
``engine.jobs.*`` heartbeat gauges — and writes two sibling files:

* ``PATH``: a validated ``repro-metrics/v1`` JSON *ring* document
  holding the most recent snapshots (bounded, so a multi-hour sweep
  never grows the file without limit), rewritten atomically each tick;
* ``PATH``'s ``.prom`` sibling: the latest snapshot rendered as
  OpenMetrics-style text, scrapeable by anything that speaks the
  Prometheus exposition format.

``tail -f`` the ``.prom`` file or poll the JSON from a dashboard — no
server, no dependencies, no change to the run's results.  The
:func:`run_health` context manager composes the exporter with a
:class:`~repro.telemetry.sampler.ResourceSampler` so one ``with`` block
gives a run live metrics *and* worker resource gauges.

All clock reads go through :mod:`repro.telemetry._clock`; the
``wall-clock`` check rule covers this module.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import re
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterator

from repro.exceptions import ValidationError
from repro.telemetry._clock import mono_now, wall_now
from repro.telemetry.recorder import Recorder
from repro.telemetry.sampler import ResourceSampler, sampling_supported
from repro.telemetry.schema import METRICS_SCHEMA, validate_metrics

__all__ = [
    "MetricsExporter",
    "RunHealth",
    "render_openmetrics",
    "run_health",
]

#: Default seconds between metric snapshots.
DEFAULT_INTERVAL = 1.0

#: Default ring size: how many snapshots the JSON document retains.
DEFAULT_RING = 64

#: Characters OpenMetrics metric names may not contain.
_METRIC_NAME_BAD = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    """Sanitize a counter/gauge name into an OpenMetrics metric name."""
    return "repro_" + _METRIC_NAME_BAD.sub("_", name)


def render_openmetrics(snapshot: dict[str, Any]) -> str:
    """One snapshot as OpenMetrics-style exposition text.

    Counters render as ``repro_<name>_total`` with ``# TYPE ...
    counter``; gauges as ``repro_<name>`` with ``# TYPE ... gauge``;
    the derived progress block (when present) as ``repro_engine_*``
    gauges.  The output ends with the ``# EOF`` marker the format
    requires.
    """
    lines: list[str] = []
    ts = snapshot.get("ts_unix")
    if isinstance(ts, (int, float)):
        lines.append(f"# repro-metrics snapshot at {float(ts):.3f}")
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _metric_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value:g}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value:g}")
    progress = snapshot.get("progress")
    if isinstance(progress, dict):
        for field, value in sorted(progress.items()):
            metric = _metric_name(f"engine.progress.{field}")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {value:g}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class MetricsExporter:
    """Background thread writing periodic metrics snapshots to disk.

    Parameters
    ----------
    recorder:
        The recorder to snapshot (counters, gauges, heartbeat).
    path:
        Target of the ``repro-metrics/v1`` JSON ring document; the
        OpenMetrics text lands next to it as ``<stem>.prom``.
    interval:
        Seconds between snapshots (default 1.0).
    ring:
        Maximum snapshots retained in the JSON document (default 64);
        older snapshots roll off the front.
    """

    def __init__(
        self,
        recorder: Recorder,
        path: str | os.PathLike[str],
        *,
        interval: float = DEFAULT_INTERVAL,
        ring: int = DEFAULT_RING,
    ) -> None:
        if not isinstance(interval, (int, float)) or interval <= 0:
            raise ValidationError(
                f"exporter interval must be a positive number, got {interval!r}"
            )
        if not isinstance(ring, int) or ring < 1:
            raise ValidationError(
                f"exporter ring size must be a positive int, got {ring!r}"
            )
        self.recorder = recorder
        self.path = pathlib.Path(path)
        self.text_path = self.path.with_name(self.path.stem + ".prom")
        self.interval = float(interval)
        self.ring = ring
        self._snapshots: deque[dict[str, Any]] = deque(maxlen=ring)
        self._created_unix: float | None = None
        self._started_mono: float | None = None
        self._prev_mono: float | None = None
        self._prev_completed: float | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._write_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "MetricsExporter":
        """Start the export thread (chainable)."""
        if self._thread is not None:
            raise ValidationError("exporter is already running")
        self._started_mono = mono_now()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-metrics-exporter", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and write one final snapshot (idempotent).

        The final flush guarantees that even a run shorter than one
        interval leaves a complete metrics file behind.
        """
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)
        self.flush()

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.flush()

    # -- snapshots -----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Build one snapshot of the recorder's current state."""
        counters, gauges = self.recorder.metrics_view()
        snapshot: dict[str, Any] = {
            "ts_unix": wall_now(),
            "counters": counters,
            "gauges": gauges,
        }
        progress = self._progress(gauges)
        if progress is not None:
            snapshot["progress"] = progress
        return snapshot

    def _progress(
        self, gauges: dict[str, float]
    ) -> dict[str, float] | None:
        """Engine progress/ETA derived from the heartbeat gauges.

        Rate is measured between consecutive snapshots on the monotonic
        clock, so a stalled run shows a decaying rate rather than the
        whole-run average hiding the stall.
        """
        total = gauges.get("engine.jobs.total")
        if total is None:
            return None
        completed = gauges.get("engine.jobs.completed", 0.0)
        now = mono_now()
        progress: dict[str, float] = {
            "total": float(total),
            "completed": float(completed),
            "cached": float(gauges.get("engine.jobs.cached", 0.0)),
        }
        if self._started_mono is not None:
            progress["elapsed_s"] = now - self._started_mono
        if self._prev_mono is not None and self._prev_completed is not None:
            dt = now - self._prev_mono
            if dt > 0:
                rate = (completed - self._prev_completed) / dt
                progress["rate_jobs_per_s"] = rate
                remaining = float(total) - float(completed)
                if rate > 0 and remaining >= 0:
                    progress["eta_s"] = remaining / rate
        self._prev_mono = now
        self._prev_completed = float(completed)
        return progress

    def document(self) -> dict[str, Any]:
        """The current ``repro-metrics/v1`` ring document."""
        snapshots = list(self._snapshots)
        created = self._created_unix
        updated = snapshots[-1]["ts_unix"] if snapshots else created
        return {
            "schema": METRICS_SCHEMA,
            "created_unix": created if created is not None else wall_now(),
            "updated_unix": updated if updated is not None else wall_now(),
            "interval_s": self.interval,
            "ring": self.ring,
            "snapshots": snapshots,
        }

    def flush(self) -> dict[str, Any]:
        """Take a snapshot and (re)write both files atomically.

        Returns the snapshot taken.  Serialized under a lock so the
        periodic thread and a caller-side :meth:`stop` never interleave
        partial writes.
        """
        with self._write_lock:
            snapshot = self.snapshot()
            if self._created_unix is None:
                self._created_unix = float(snapshot["ts_unix"])
            self._snapshots.append(snapshot)
            document = validate_metrics(self.document())
            tmp = self.path.with_name(self.path.name + ".tmp")
            tmp.write_text(
                json.dumps(document, indent=2, allow_nan=False) + "\n"
            )
            os.replace(tmp, self.path)
            self.text_path.write_text(render_openmetrics(snapshot))
        return snapshot

    def __repr__(self) -> str:
        return (
            f"MetricsExporter(path={str(self.path)!r}, "
            f"interval={self.interval}, ring={self.ring})"
        )


@dataclass
class RunHealth:
    """Handles of an active :func:`run_health` block.

    Attributes
    ----------
    exporter:
        The metrics exporter, or ``None`` when no metrics path was
        requested.
    sampler:
        The resource sampler, or ``None`` when resource sampling was
        disabled or unsupported on this platform.
    """

    exporter: MetricsExporter | None
    sampler: ResourceSampler | None


@contextlib.contextmanager
def run_health(
    recorder: Recorder,
    *,
    metrics_path: str | os.PathLike[str] | None = None,
    interval: float = DEFAULT_INTERVAL,
    sample_resources: bool = True,
    sampler_interval: float = 0.2,
) -> Iterator[RunHealth]:
    """Run-health harness: metrics export + resource sampling, composed.

    Parameters
    ----------
    recorder:
        The recorder the run records into (activate it separately with
        :func:`repro.telemetry.trace.recording`).
    metrics_path:
        Target for the ``repro-metrics/v1`` ring file; ``None`` skips
        the exporter entirely (resource gauges still land in the
        recorder, and therefore in a ``--trace`` document).
    interval:
        Exporter snapshot cadence in seconds.
    sample_resources:
        Start a :class:`~repro.telemetry.sampler.ResourceSampler`
        alongside (no-op where ``/proc`` is unavailable).
    sampler_interval:
        Resource sampling cadence in seconds.

    Yields
    ------
    RunHealth
        The active exporter/sampler handles (either may be ``None``).

    On exit the sampler stops first — taking its final sample — and the
    exporter flushes last, so the final metrics snapshot includes the
    final resource gauges.
    """
    sampler: ResourceSampler | None = None
    if sample_resources and sampling_supported():
        sampler = ResourceSampler(recorder, interval=sampler_interval).start()
    exporter: MetricsExporter | None = None
    try:
        if metrics_path is not None:
            exporter = MetricsExporter(
                recorder, metrics_path, interval=interval
            ).start()
        yield RunHealth(exporter=exporter, sampler=sampler)
    finally:
        if sampler is not None:
            sampler.stop()
        if exporter is not None:
            exporter.stop()
