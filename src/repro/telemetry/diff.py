"""Cross-run trace diffing: where did the time go *between* two runs.

``repro trace diff A.json B.json`` aligns the span trees of two
``repro-trace/v1`` documents and reports, per aligned span, the change
in duration with self-time attribution — so "the sweep got 40% slower"
decomposes into "EM iterations in these three jobs" instead of a
number.  Alignment is structural, not positional: a span's identity is
its ancestry path where each step prefers the engine cache key
(``attrs.key`` — backend- and schedule-independent), then the bench
case name (``attrs.case``), and only falls back to name + occurrence
index among same-name siblings.  Two runs of the same spec therefore
align job-for-job even when a parallel backend completed them in a
different order.

The manifest delta answers the *why* half: spec hash, seed lineage,
git revision, and package versions are compared field by field, so a
slowdown co-arriving with a numpy bump or a changed spec hash is
visible in the same report.
"""

from __future__ import annotations

import math
from typing import Any

from repro.exceptions import ValidationError
from repro.telemetry.convergence import payload_scalar
from repro.telemetry.spans import Span
from repro.telemetry.viewer import format_seconds

__all__ = ["diff_traces", "render_diff"]

#: Manifest scalar fields compared by :func:`_manifest_delta`.
_MANIFEST_FIELDS = ("git_revision",)

#: Spec-block fields compared by :func:`_manifest_delta`.
_SPEC_FIELDS = ("name", "hash", "task", "n_points", "trials", "seed",
                "seed_mode")


def _span_stats(roots: list[Span]) -> dict[str, dict[str, Any]]:
    """Aggregate spans by identity path.

    Returns ``path -> {name, count, duration, self, cached,
    convergence}`` where ``path`` encodes the span's ancestry (see
    module docstring for the identity rules) and ``convergence`` folds
    any ``repro-convergence/*`` payloads found along the path (``None``
    when the path carries none — pre-convergence traces aggregate
    exactly as before).
    """
    stats: dict[str, dict[str, Any]] = {}

    def ident(span: Span, counts: dict[str, int]) -> str:
        key = span.attrs.get("key")
        if isinstance(key, str) and key:
            return f"{span.name}[{key}]"
        case = span.attrs.get("case")
        if isinstance(case, str) and case:
            return f"{span.name}[{case}]"
        index = counts.get(span.name, 0)
        counts[span.name] = index + 1
        return f"{span.name}#{index}"

    def visit(span: Span, prefix: str, counts: dict[str, int]) -> None:
        path = prefix + "/" + ident(span, counts)
        entry = stats.setdefault(
            path,
            {
                "name": span.name,
                "count": 0,
                "duration": 0.0,
                "self": 0.0,
                "cached": 0,
                "convergence": None,
            },
        )
        entry["count"] += 1
        entry["duration"] += span.duration
        entry["self"] += span.self_time()
        if span.attrs.get("cached"):
            entry["cached"] += 1
        payload = span.attrs.get("convergence")
        if isinstance(payload, dict) and str(
            payload.get("schema", "")
        ).startswith("repro-convergence/"):
            folded = entry["convergence"]
            if folded is None:
                folded = {
                    "kernel": str(payload.get("kernel", "?")),
                    "fits": 0,
                    "iterations": 0,
                    "nonconverged": 0,
                    "nonfinite": 0,
                    "final_objective": None,
                }
                entry["convergence"] = folded
            folded["fits"] += 1
            for field in ("iterations", "nonfinite"):
                value = payload.get(field)
                if isinstance(value, int) and not isinstance(value, bool):
                    folded[field] += value
            if payload.get("converged") is False:
                folded["nonconverged"] += 1
            final = payload_scalar(payload, "final_objective")
            if final is not None:
                folded["final_objective"] = final
        child_counts: dict[str, int] = {}
        for child in span.children:
            visit(child, path, child_counts)

    root_counts: dict[str, int] = {}
    for root in roots:
        visit(root, "", root_counts)
    return stats


def _manifest_delta(
    a: dict[str, Any] | None, b: dict[str, Any] | None
) -> list[dict[str, Any]]:
    """Field-by-field provenance changes between two run manifests."""
    changes: list[dict[str, Any]] = []
    a = a if isinstance(a, dict) else {}
    b = b if isinstance(b, dict) else {}

    def compare(field: str, left: Any, right: Any) -> None:
        if left != right:
            changes.append({"field": field, "a": left, "b": right})

    for field in _MANIFEST_FIELDS:
        compare(field, a.get(field), b.get(field))
    spec_a = a.get("spec") if isinstance(a.get("spec"), dict) else {}
    spec_b = b.get("spec") if isinstance(b.get("spec"), dict) else {}
    for field in _SPEC_FIELDS:
        compare(f"spec.{field}", spec_a.get(field), spec_b.get(field))
    packages_a = (
        a.get("packages") if isinstance(a.get("packages"), dict) else {}
    )
    packages_b = (
        b.get("packages") if isinstance(b.get("packages"), dict) else {}
    )
    for name in sorted(set(packages_a) | set(packages_b)):
        compare(
            f"packages.{name}", packages_a.get(name), packages_b.get(name)
        )
    return changes


def diff_traces(
    a_payload: dict[str, Any], b_payload: dict[str, Any]
) -> dict[str, Any]:
    """Structured diff of two ``repro-trace/v1`` documents.

    Parameters
    ----------
    a_payload, b_payload:
        The baseline (A) and comparison (B) trace documents, already
        validated.

    Returns
    -------
    dict
        ``{"a", "b", "spans", "counters", "convergence", "manifest"}``
        where each span row carries the aligned path, per-run
        duration/self-time, the deltas, a ``status`` of
        ``common``/``added``/``removed`` (relative to A), and whether
        its cached state flipped.  ``convergence`` holds one row per
        aligned path carrying convergence payloads on either side:
        iteration-count delta, final-objective delta (``None`` when
        either side is missing or non-finite), and the ``diverged`` /
        ``nonfinite_introduced`` flags marking a run that stopped
        converging or started producing NaNs relative to A.
    """
    for label, payload in (("A", a_payload), ("B", b_payload)):
        if not isinstance(payload, dict):
            raise ValidationError(
                f"trace {label} must be a dict, got "
                f"{type(payload).__name__}"
            )
    a_roots = [Span.from_dict(s) for s in a_payload.get("spans", [])]
    b_roots = [Span.from_dict(s) for s in b_payload.get("spans", [])]
    a_stats = _span_stats(a_roots)
    b_stats = _span_stats(b_roots)

    rows: list[dict[str, Any]] = []
    for path in sorted(set(a_stats) | set(b_stats)):
        left = a_stats.get(path)
        right = b_stats.get(path)
        status = (
            "common" if left and right else "removed" if left else "added"
        )
        a_duration = left["duration"] if left else 0.0
        b_duration = right["duration"] if right else 0.0
        a_self = left["self"] if left else 0.0
        b_self = right["self"] if right else 0.0
        rows.append(
            {
                "path": path,
                "name": (left or right or {}).get("name", ""),
                "status": status,
                "a_duration": a_duration,
                "b_duration": b_duration,
                "delta": b_duration - a_duration,
                "a_self": a_self,
                "b_self": b_self,
                "delta_self": b_self - a_self,
                "cached_changed": bool(left) and bool(right)
                and bool(left["cached"]) != bool(right["cached"]),
            }
        )

    convergence_rows: list[dict[str, Any]] = []
    for path in sorted(set(a_stats) | set(b_stats)):
        conv_a = (a_stats.get(path) or {}).get("convergence")
        conv_b = (b_stats.get(path) or {}).get("convergence")
        if conv_a is None and conv_b is None:
            continue
        a_iterations = conv_a["iterations"] if conv_a else 0
        b_iterations = conv_b["iterations"] if conv_b else 0
        a_final = conv_a["final_objective"] if conv_a else None
        b_final = conv_b["final_objective"] if conv_b else None
        comparable = (
            a_final is not None
            and b_final is not None
            and math.isfinite(a_final)
            and math.isfinite(b_final)
        )
        convergence_rows.append(
            {
                "path": path,
                "kernel": (conv_b or conv_a or {}).get("kernel", "?"),
                "a_iterations": a_iterations,
                "b_iterations": b_iterations,
                "delta_iterations": b_iterations - a_iterations,
                "a_final_objective": a_final,
                "b_final_objective": b_final,
                "delta_final_objective": (
                    b_final - a_final if comparable else None
                ),
                "diverged": bool(conv_b and conv_b["nonconverged"])
                and not bool(conv_a and conv_a["nonconverged"]),
                "nonfinite_introduced": bool(
                    conv_b and conv_b["nonfinite"]
                )
                and not bool(conv_a and conv_a["nonfinite"]),
            }
        )

    counter_rows: list[dict[str, Any]] = []
    a_counters = a_payload.get("counters") or {}
    b_counters = b_payload.get("counters") or {}
    for name in sorted(set(a_counters) | set(b_counters)):
        left_value = float(a_counters.get(name, 0.0))
        right_value = float(b_counters.get(name, 0.0))
        if left_value != right_value:
            counter_rows.append(
                {
                    "name": name,
                    "a": left_value,
                    "b": right_value,
                    "delta": right_value - left_value,
                }
            )

    def summary(
        payload: dict[str, Any], roots: list[Span]
    ) -> dict[str, Any]:
        return {
            "created_unix": payload.get("created_unix"),
            "total_s": sum(root.duration for root in roots),
            "spans": sum(
                1 for root in roots for _ in root.iter_spans()
            ),
        }

    return {
        "a": summary(a_payload, a_roots),
        "b": summary(b_payload, b_roots),
        "spans": rows,
        "counters": counter_rows,
        "convergence": convergence_rows,
        "manifest": _manifest_delta(
            a_payload.get("manifest"), b_payload.get("manifest")
        ),
    }


def _signed(seconds: float) -> str:
    sign = "+" if seconds >= 0 else "-"
    return sign + format_seconds(abs(seconds))


def render_diff(diff: dict[str, Any], *, top: int = 20) -> str:
    """Render a :func:`diff_traces` result as an ASCII report.

    Parameters
    ----------
    diff:
        The structured diff.
    top:
        How many changed common spans to list (largest absolute
        self-time delta first).
    """
    a, b = diff["a"], diff["b"]
    lines = [
        "trace diff (B - A)",
        f"  A: {a['spans']} spans, total {format_seconds(a['total_s'])}",
        f"  B: {b['spans']} spans, total {format_seconds(b['total_s'])}",
        f"  total delta: {_signed(b['total_s'] - a['total_s'])}",
    ]

    manifest = diff["manifest"]
    if manifest:
        lines.append("")
        lines.append("manifest changes:")
        for change in manifest:
            lines.append(
                f"  {change['field']:<22} {change['a']!r} -> {change['b']!r}"
            )

    rows = diff["spans"]
    common = sorted(
        (row for row in rows if row["status"] == "common"),
        key=lambda row: abs(row["delta_self"]),
        reverse=True,
    )
    changed = [
        row
        for row in common
        if row["delta_self"] != 0.0  # repro: ignore[float-eq] exact zero means the span pair is literally identical (cached both sides); any real timing differs in the last bit
        or row["cached_changed"]
    ]
    if changed:
        lines.append("")
        lines.append(
            f"top span deltas by self-time ({min(top, len(changed))} of "
            f"{len(changed)} changed):"
        )
        lines.append(
            f"  {'span':<40} {'A self':>9} {'B self':>9} {'delta':>10}"
        )
        for row in changed[:top]:
            label = row["path"].lstrip("/")
            if len(label) > 40:
                label = "..." + label[-37:]
            note = "  [cache flip]" if row["cached_changed"] else ""
            lines.append(
                f"  {label:<40} {format_seconds(row['a_self']):>9} "
                f"{format_seconds(row['b_self']):>9} "
                f"{_signed(row['delta_self']):>10}{note}"
            )

    added = [row for row in rows if row["status"] == "added"]
    removed = [row for row in rows if row["status"] == "removed"]
    for label, subset in (("only in B", added), ("only in A", removed)):
        if subset:
            total = sum(row["b_duration"] + row["a_duration"]
                        for row in subset)
            lines.append("")
            lines.append(
                f"{label}: {len(subset)} span(s), "
                f"{format_seconds(total)} total"
            )
            for row in subset[:top]:
                seconds = row["b_duration"] + row["a_duration"]
                lines.append(
                    f"  {row['path'].lstrip('/'):<52} "
                    f"{format_seconds(seconds):>9}"
                )

    convergence = [
        row
        for row in diff.get("convergence", [])
        if row["delta_iterations"] != 0
        or row["diverged"]
        or row["nonfinite_introduced"]
        or (
            row["delta_final_objective"] is not None
            and row["delta_final_objective"] != 0.0  # repro: ignore[float-eq] exact zero means both runs landed on the bit-identical objective; any real drift differs in the last bit
        )
    ]
    if convergence:
        lines.append("")
        lines.append("convergence deltas:")
        lines.append(
            f"  {'span':<40} {'A iter':>7} {'B iter':>7} {'delta':>7} "
            f"{'final obj delta':>16}"
        )
        for row in convergence[:top]:
            label = row["path"].lstrip("/")
            if len(label) > 40:
                label = "..." + label[-37:]
            obj_delta = row["delta_final_objective"]
            obj_text = f"{obj_delta:+.6g}" if obj_delta is not None else "-"
            flags = ""
            if row["diverged"]:
                flags += "  [diverged]"
            if row["nonfinite_introduced"]:
                flags += "  [nonfinite]"
            lines.append(
                f"  {label:<40} {row['a_iterations']:>7} "
                f"{row['b_iterations']:>7} "
                f"{row['delta_iterations']:>+7} {obj_text:>16}{flags}"
            )

    counters = diff["counters"]
    if counters:
        lines.append("")
        lines.append("counter changes:")
        for row in counters:
            lines.append(
                f"  {row['name']:<28} {row['a']:g} -> {row['b']:g} "
                f"({row['delta']:+g})"
            )
    if len(lines) == 4 and not manifest:
        lines.append("  (no differences)")
    return "\n".join(lines)
