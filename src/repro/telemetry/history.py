"""Bench history: fold ``repro-bench/v1`` payloads into per-case timelines.

``repro bench history RESULTS...`` reads any number of ``BENCH_*.json``
payloads (a nightly directory, CI artifacts, ad-hoc local runs), orders
them by ``created_unix``, and builds one timeline per benchmark case —
so "is ``hotpath.em_recon.large`` drifting" is one command over the
files that already exist instead of a spreadsheet.  The result is a
``repro-bench-history/v1`` document; when a baseline payload is
supplied (by default the committed ``benchmarks/baselines/`` one), each
case's *latest* headline time is compared against it and flagged when
it regresses beyond the ratio the bench gate already uses.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import ValidationError
from repro.telemetry.viewer import sparkline

__all__ = ["HISTORY_SCHEMA", "build_history", "render_history"]

#: Version tag of the history document this module produces.
HISTORY_SCHEMA = "repro-bench-history/v1"

#: ``latest / baseline`` above this flags a case as regressed (matches
#: the bench runner's default gate).
DEFAULT_REGRESSION_RATIO = 1.5


def build_history(
    payloads: list[dict[str, Any]],
    *,
    baseline: dict[str, Any] | None = None,
    regression_ratio: float = DEFAULT_REGRESSION_RATIO,
) -> dict[str, Any]:
    """Fold bench payloads into a per-case timeline document.

    Parameters
    ----------
    payloads:
        Parsed ``repro-bench/v1`` payloads, in any order; they are
        sorted by ``created_unix`` internally.
    baseline:
        Optional baseline payload; each case's latest ``seconds_min``
        is compared against the baseline's.
    regression_ratio:
        ``latest / baseline`` above this marks the case regressed.

    Returns
    -------
    dict
        A ``repro-bench-history/v1`` document: per case a timeline of
        ``{created_unix, seconds_min, seconds_mean}`` points plus
        ``best_s``, ``latest_s``, the baseline comparison, and the
        overall ``regressions`` list.
    """
    if not payloads:
        raise ValidationError("bench history needs at least one payload")
    for index, payload in enumerate(payloads):
        if not isinstance(payload, dict) or "benchmarks" not in payload:
            raise ValidationError(
                f"payload {index} is not a repro-bench payload "
                "(no 'benchmarks' key)"
            )
    ordered = sorted(
        payloads, key=lambda p: float(p.get("created_unix", 0.0))
    )
    base_benchmarks: dict[str, Any] = (
        baseline.get("benchmarks", {}) if baseline else {}
    )

    cases: dict[str, dict[str, Any]] = {}
    for payload in ordered:
        created = float(payload.get("created_unix", 0.0))
        for name, entry in payload["benchmarks"].items():
            case = cases.setdefault(name, {"timeline": []})
            case["timeline"].append(
                {
                    "created_unix": created,
                    "seconds_min": float(entry["seconds_min"]),
                    "seconds_mean": float(entry["seconds_mean"]),
                }
            )

    regressions: list[str] = []
    for name, case in cases.items():
        timeline = case["timeline"]
        mins = [point["seconds_min"] for point in timeline]
        case["runs"] = len(timeline)
        case["best_s"] = min(mins)
        case["latest_s"] = mins[-1]
        base = base_benchmarks.get(name)
        if base is not None:
            baseline_s = float(base["seconds_min"])
            case["baseline_s"] = baseline_s
            ratio = (
                mins[-1] / baseline_s if baseline_s > 0.0 else float("inf")
            )
            case["baseline_ratio"] = ratio
            case["regressed"] = ratio > regression_ratio
            if case["regressed"]:
                regressions.append(name)
        else:
            case["baseline_s"] = None
            case["baseline_ratio"] = None
            case["regressed"] = False

    return {
        "schema": HISTORY_SCHEMA,
        "runs": len(ordered),
        "regression_ratio": regression_ratio,
        "cases": dict(sorted(cases.items())),
        "regressions": sorted(regressions),
    }


def render_history(history: dict[str, Any]) -> str:
    """Render a history document as an ASCII table with sparklines."""
    cases = history["cases"]
    lines = [
        f"bench history: {history['runs']} run(s), {len(cases)} case(s)",
        f"{'case':<42} {'runs':>4} {'best':>9} {'latest':>9} "
        f"{'vs base':>8}  trend",
        "-" * 88,
    ]
    for name, case in cases.items():
        ratio = case["baseline_ratio"]
        versus = f"{ratio:>7.2f}x" if ratio is not None else "       -"
        marker = "  << REGRESSION" if case["regressed"] else ""
        mins = [point["seconds_min"] for point in case["timeline"]]
        spark = sparkline(mins, width=len(mins))
        lines.append(
            f"{name:<42} {case['runs']:>4} {case['best_s']:>8.4f}s "
            f"{case['latest_s']:>8.4f}s {versus}  {spark}{marker}"
        )
    if history["regressions"]:
        lines.append(
            f"{len(history['regressions'])} case(s) regressed beyond "
            f"{history['regression_ratio']:.2f}x baseline"
        )
    return "\n".join(lines)
