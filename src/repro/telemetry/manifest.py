"""Run manifests: machine-readable provenance for a spec/engine run.

A manifest answers "what exactly ran, where, and how long did each
piece take" — the record a tournament report or a regression hunt needs
to be trustworthy.  It carries the spec identity (name + content hash),
the full seed lineage (root seed, seed mode, and every job's spawn
key), the environment (git revision, platform, package versions), and
a per-job timing table joined from the engine's progress stream.

Everything except the timing columns is deterministic for a fixed spec
and checkout, so two manifests of the same run differ only in measured
durations — the property the manifest tests pin.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
from typing import Any

from repro.exceptions import ValidationError

__all__ = [
    "MANIFEST_KIND",
    "spec_fingerprint",
    "git_revision",
    "platform_info",
    "package_versions",
    "build_manifest",
]

#: Format tag stored under the manifest's ``kind`` key.
MANIFEST_KIND = "repro-manifest/v1"


def spec_fingerprint(spec: Any) -> str:
    """SHA-256 of the spec's canonical JSON form.

    Two specs share a fingerprint iff their :meth:`to_dict` payloads are
    identical, mirroring the engine cache's content-addressing idea at
    the whole-experiment level.
    """
    try:
        blob = json.dumps(
            spec.to_dict(),
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=False,
        )
    except (TypeError, ValueError) as exc:
        raise ValidationError(
            f"spec is not canonically JSON-serializable: {exc}"
        ) from exc
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def git_revision(cwd: str | None = None) -> str | None:
    """The checkout's ``HEAD`` commit, or ``None`` outside a repository."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    revision = completed.stdout.strip()
    return revision or None


def platform_info() -> dict[str, Any]:
    """Host facts that contextualize timings."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux platforms
        cpus = os.cpu_count() or 1
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpus": cpus,
    }


def package_versions() -> dict[str, str]:
    """Versions of the packages whose numerics shape the results."""
    # Deferred import: instrumented modules (stats, engine) import the
    # telemetry package, so pulling ``repro`` in at module scope would
    # close an import cycle during package initialization.
    import repro

    versions = {"repro": getattr(repro, "__version__", "unknown")}
    for name in ("numpy", "scipy"):
        module = sys.modules.get(name)
        if module is None:
            try:
                module = __import__(name)
            except ImportError:
                continue
        versions[name] = getattr(module, "__version__", "unknown")
    return versions


def build_manifest(
    *,
    spec: Any = None,
    rows: Any = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble a run manifest.

    Parameters
    ----------
    spec:
        Optional :class:`~repro.api.spec.ExperimentSpec` (duck-typed:
        anything with ``name``/``to_dict``/``compile_jobs`` works).
        Adds the spec identity block and the per-job seed-lineage table.
    rows:
        Optional per-job timing rows — typically
        :attr:`~repro.engine.progress.TraceReporter.rows` — each a dict
        with ``key``, ``duration``, and ``cached``, plus an optional
        per-kernel ``convergence`` summary harvested from the job's
        worker trace fragment.  Joined onto the job table by cache key;
        jobs without a row keep lineage only.
    extra:
        Free-form annotations stored under ``"extra"``.

    Returns
    -------
    dict
        A JSON-serializable manifest; deterministic for a fixed spec
        and checkout except for the joined timing columns.
    """
    manifest: dict[str, Any] = {
        "kind": MANIFEST_KIND,
        "git_revision": git_revision(),
        "platform": platform_info(),
        "packages": package_versions(),
    }
    if spec is not None:
        jobs = spec.compile_jobs()
        manifest["spec"] = {
            "name": spec.name,
            "hash": spec_fingerprint(spec),
            "task": spec.task_ref,
            "n_points": len(spec.expand_points()),
            "trials": spec.trials,
            "seed": spec.seed,
            "seed_mode": spec.seed_mode,
        }
        timing_by_key: dict[str, dict[str, Any]] = {}
        for row in rows or ():
            timing_by_key[row["key"]] = row
        table: list[dict[str, Any]] = []
        for job in jobs:
            entry: dict[str, Any] = {
                "key": job.key(),
                "task": job.task,
                "seed_root": job.seed_root,
                "seed_path": list(job.seed_path),
            }
            row = timing_by_key.get(entry["key"])
            if row is not None:
                entry["duration"] = float(row["duration"])
                entry["cached"] = bool(row["cached"])
                if "convergence" in row:
                    entry["convergence"] = row["convergence"]
            table.append(entry)
        manifest["jobs"] = table
    elif rows is not None:
        table = []
        for row in rows:
            entry = {
                "key": row["key"],
                "duration": float(row["duration"]),
                "cached": bool(row["cached"]),
            }
            if "convergence" in row:
                entry["convergence"] = row["convergence"]
            table.append(entry)
        manifest["jobs"] = table
    if extra:
        manifest["extra"] = dict(extra)
    return manifest
