"""Zero-dependency tracing, metrics, and run-provenance layer.

The measurement substrate under every scale-out direction: you cannot
autotune, shard, or regress what you cannot observe.  The package
provides

* hierarchical **spans** with monotonic timing and per-span attributes
  (:mod:`~repro.telemetry.spans`), recorded through the
  :mod:`~repro.telemetry.trace` facade — a no-op fast path when no
  recorder is active, so hot kernels stay permanently instrumented;
* **counters and gauges** (cache hits, jobs dispatched) on the same
  thread-safe :class:`~repro.telemetry.recorder.Recorder`, which
  serializes everything to a versioned ``repro-trace/v1`` document
  (:mod:`~repro.telemetry.schema`) and merges fragments shipped back
  from ``ParallelExecutor`` worker processes;
* **run manifests** (:mod:`~repro.telemetry.manifest`): spec hash, seed
  lineage, git revision, platform, package versions, per-job timings;
* an ASCII **viewer** (:mod:`~repro.telemetry.viewer`) behind
  ``repro trace <file>``;
* a **run-health layer**: live metrics export to ``repro-metrics/v1``
  ring files + OpenMetrics text (:mod:`~repro.telemetry.exporter`),
  ``/proc``-based worker resource sampling
  (:mod:`~repro.telemetry.sampler`), cross-run trace diffing
  (:mod:`~repro.telemetry.diff`), and bench-history timelines
  (:mod:`~repro.telemetry.history`);
* **convergence telemetry**: per-iteration trackers for the iterative
  kernels (:mod:`~repro.telemetry.convergence`), serialized as
  ``repro-convergence/v1`` span payloads and surfaced by the viewer,
  the diff, the manifests, and the live ``repro watch`` dashboard
  (:mod:`~repro.telemetry.watch`).

Typical use::

    from repro.telemetry import Recorder, trace

    recorder = Recorder()
    with trace.recording(recorder):
        result = run_spec("sweep.json")
    document = recorder.to_document(manifest=build_manifest(spec=spec))
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any

from repro.telemetry import trace
from repro.telemetry.convergence import (
    CONVERGENCE_SCHEMA,
    IterationTracker,
    collect_payloads,
    summarize_payloads,
)
from repro.telemetry.diff import diff_traces, render_diff
from repro.telemetry.exporter import (
    MetricsExporter,
    RunHealth,
    render_openmetrics,
    run_health,
)
from repro.telemetry.history import (
    HISTORY_SCHEMA,
    build_history,
    render_history,
)
from repro.telemetry.manifest import (
    MANIFEST_KIND,
    build_manifest,
    git_revision,
    package_versions,
    platform_info,
    spec_fingerprint,
)
from repro.telemetry.recorder import Recorder
from repro.telemetry.sampler import ResourceSampler, sampling_supported
from repro.telemetry.schema import (
    METRICS_SCHEMA,
    TRACE_SCHEMA,
    validate_metrics,
    validate_trace,
)
from repro.telemetry.spans import Span
from repro.telemetry.viewer import format_seconds, render_trace, sparkline
from repro.telemetry.watch import render_watch, watch_loop

__all__ = [
    "CONVERGENCE_SCHEMA",
    "HISTORY_SCHEMA",
    "IterationTracker",
    "MANIFEST_KIND",
    "METRICS_SCHEMA",
    "MetricsExporter",
    "Recorder",
    "ResourceSampler",
    "RunHealth",
    "Span",
    "TRACE_SCHEMA",
    "build_history",
    "build_manifest",
    "collect_payloads",
    "diff_traces",
    "format_seconds",
    "git_revision",
    "package_versions",
    "platform_info",
    "render_diff",
    "render_history",
    "render_openmetrics",
    "render_trace",
    "render_watch",
    "run_health",
    "sampling_supported",
    "sparkline",
    "spec_fingerprint",
    "summarize_payloads",
    "trace",
    "validate_metrics",
    "validate_trace",
    "watch_loop",
    "write_trace",
]


def write_trace(
    document: dict[str, Any], path: str | os.PathLike[str]
) -> pathlib.Path:
    """Validate ``document`` and write it to ``path`` as strict JSON.

    Validation-on-write means every file this function produces is a
    well-formed ``repro-trace/v1`` document — the same guarantee the
    ``repro trace --validate`` CI step checks from the outside.
    """
    validate_trace(document)
    target = pathlib.Path(path)
    target.write_text(
        json.dumps(document, indent=2, allow_nan=False) + "\n"
    )
    return target
