"""Span primitives: the timed, attributed, tree-structured unit of a trace.

A :class:`Span` covers one operation — an engine job, a pipeline phase,
an EM fit — with a wall-clock anchor (``start_unix``, comparable across
processes), a monotonic duration (measured with
:func:`time.perf_counter`, immune to clock steps), free-form attributes,
and child spans.  Spans serialize to plain dicts so a worker process can
ship its subtree back to the parent recorder inside a pickled
:class:`~repro.engine.jobs.JobResult`.
"""

from __future__ import annotations

import time
from typing import Any, Iterator

from repro.exceptions import ValidationError
from repro.utils.serialization import sanitize_for_json

__all__ = ["Span"]


class Span:
    """One timed operation in a trace tree.

    Attributes
    ----------
    name:
        Dotted operation label, e.g. ``"engine.job"`` or ``"em.fit"``.
    start_unix:
        Wall-clock start (``time.time()``); wall time is the only clock
        comparable across processes, so queue-wait arithmetic uses it.
    duration:
        Elapsed seconds, measured monotonically between :meth:`begin`
        and :meth:`finish`.
    attrs:
        Free-form JSON-serializable annotations (worker id, cache
        provenance, iteration counts, ...).
    children:
        Nested spans, in start order.
    """

    __slots__ = ("name", "start_unix", "duration", "attrs", "children",
                 "_start_perf")

    def __init__(
        self,
        name: str,
        attrs: dict[str, Any] | None = None,
        *,
        start_unix: float | None = None,
        duration: float = 0.0,
    ) -> None:
        if not isinstance(name, str) or not name:
            raise ValidationError(
                f"span name must be a non-empty string, got {name!r}"
            )
        self.name = name
        self.start_unix = (
            time.time() if start_unix is None else float(start_unix)
        )
        self.duration = float(duration)
        self.attrs: dict[str, Any] = dict(attrs or {})
        self.children: list[Span] = []
        self._start_perf: float | None = None

    # ------------------------------------------------------------------
    # lifecycle

    def begin(self) -> "Span":
        """Anchor the wall clock and start the monotonic timer."""
        self.start_unix = time.time()
        self._start_perf = time.perf_counter()
        return self

    def finish(self) -> "Span":
        """Stop the monotonic timer and fix the duration."""
        if self._start_perf is not None:
            self.duration = time.perf_counter() - self._start_perf
            self._start_perf = None
        return self

    def set(self, **attrs: Any) -> "Span":
        """Merge attributes into the span (chainable)."""
        self.attrs.update(attrs)
        return self

    # ------------------------------------------------------------------
    # traversal

    @property
    def end_unix(self) -> float:
        """Wall-clock end estimate (``start_unix + duration``)."""
        return self.start_unix + self.duration

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def self_time(self) -> float:
        """Duration not covered by direct children (never negative)."""
        return max(
            0.0, self.duration - sum(c.duration for c in self.children)
        )

    # ------------------------------------------------------------------
    # serialization

    def to_dict(self) -> dict[str, Any]:
        """Strict-JSON encoding (nan-safe attrs); inverted by :meth:`from_dict`."""
        return {
            "name": self.name,
            "start_unix": self.start_unix,
            "duration": self.duration,
            "attrs": sanitize_for_json(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output."""
        if not isinstance(payload, dict):
            raise ValidationError(
                f"span payload must be a dict, got {type(payload).__name__}"
            )
        try:
            span = cls(
                payload["name"],
                payload.get("attrs") or {},
                start_unix=float(payload["start_unix"]),
                duration=float(payload["duration"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed span payload: {exc}") from exc
        for child in payload.get("children") or ():
            span.children.append(cls.from_dict(child))
        return span

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, duration={self.duration:.6f}, "
            f"children={len(self.children)})"
        )
