"""Worker resource sampling: per-process RSS/CPU and shm segment bytes.

A :class:`ResourceSampler` watches a run *while it executes*: a
background thread periodically reads ``/proc/<pid>/statm`` and
``/proc/<pid>/stat`` for the parent process and every announced engine
worker, plus the live bytes of the data plane's ``/dev/shm`` segments,
and publishes everything as ``resource.*`` gauges on the run's
:class:`~repro.telemetry.recorder.Recorder` — so the metrics exporter
streams them and a ``--trace`` document archives the peaks.

Attribution: executors announce their worker PIDs through
:func:`announce_workers`; each worker's peak RSS and cumulative CPU land
under ``resource.worker.<pid>.*`` gauges, and every ``engine.job`` span
already carries a ``worker`` PID attribute — joining the two tells you
which jobs a memory spike belongs to.

Platform contract: sampling reads the Linux ``/proc`` filesystem.  On
platforms without it, :func:`sampling_supported` is ``False`` and
:meth:`ResourceSampler.start` is a documented **no-op** — the sampler
object exists, ``enabled`` stays ``False``, and no gauges are written.
All clock reads go through :mod:`repro.telemetry._clock` (the
``wall-clock`` check rule covers this module).
"""

from __future__ import annotations

import os
import pathlib
import threading

from repro.exceptions import ValidationError
from repro.telemetry.recorder import Recorder

__all__ = [
    "ResourceSampler",
    "announce_workers",
    "announced_workers",
    "clear_workers",
    "read_process",
    "read_shm_bytes",
    "sampling_supported",
]

#: Where Linux exposes per-process accounting.
_PROC = pathlib.Path("/proc")

#: Where ``multiprocessing.shared_memory`` segments live on Linux.
_SHM_DIR = pathlib.Path("/dev/shm")


def _sysconf(name: str, default: int) -> int:
    """``os.sysconf`` with a fallback for platforms lacking the key."""
    try:
        value = os.sysconf(name)
    except (AttributeError, OSError, ValueError):
        return default
    return int(value) if value > 0 else default


#: Bytes per page (RSS in ``statm`` is counted in pages).
_PAGE_BYTES = _sysconf("SC_PAGE_SIZE", 4096)

#: Clock ticks per second (CPU time in ``stat`` is counted in ticks).
_CLK_TCK = _sysconf("SC_CLK_TCK", 100)


# ----------------------------------------------------------------------
# worker announcement (the executor -> sampler PID hook)

_WORKERS_LOCK = threading.Lock()
_WORKERS: set[int] = set()


def announce_workers(pids: list[int] | set[int] | tuple[int, ...]) -> None:
    """Record engine worker PIDs for any active sampler to watch.

    Called by the process-pool executors right after their workers
    spawn.  Announcing is unconditional and nearly free (a set update
    under a lock); when no sampler is running the set is simply never
    read.  PIDs accumulate for the life of the process — a sampler
    skips the ones whose ``/proc`` entries have disappeared.
    """
    with _WORKERS_LOCK:
        _WORKERS.update(int(pid) for pid in pids)


def announced_workers() -> set[int]:
    """The PIDs announced so far (a copy)."""
    with _WORKERS_LOCK:
        return set(_WORKERS)


def clear_workers() -> None:
    """Forget all announced PIDs (test isolation hook)."""
    with _WORKERS_LOCK:
        _WORKERS.clear()


# ----------------------------------------------------------------------
# one-shot /proc readers

def sampling_supported() -> bool:
    """True when the ``/proc`` files this module reads exist (Linux)."""
    return (_PROC / "self" / "statm").is_file()


def read_process(pid: int) -> dict[str, float] | None:
    """Resident-set bytes and cumulative CPU seconds of one process.

    Returns ``None`` when the process is gone or ``/proc`` is absent —
    callers treat that as "stop watching this PID", never as an error.
    """
    try:
        statm = (_PROC / str(pid) / "statm").read_text().split()
        stat = (_PROC / str(pid) / "stat").read_text()
    except (OSError, UnicodeDecodeError):
        return None
    try:
        rss_bytes = float(int(statm[1]) * _PAGE_BYTES)
        # The comm field may contain spaces/parentheses; everything
        # after the *last* ')' is fixed-position: state is field 3,
        # utime field 14, stime field 15 (1-indexed in proc(5)).
        rest = stat.rsplit(")", 1)[1].split()
        cpu_seconds = (int(rest[11]) + int(rest[12])) / _CLK_TCK
    except (IndexError, ValueError):
        return None
    return {"rss_bytes": rss_bytes, "cpu_seconds": cpu_seconds}


def read_shm_bytes() -> int | None:
    """Live bytes of the data plane's ``/dev/shm`` segments.

    Sums the sizes of every segment carrying the data plane's name
    prefix — the *filesystem's* view of segment residency, which the
    fault-injection suite already uses to prove nothing leaks.  Returns
    ``None`` where ``/dev/shm`` does not exist.
    """
    # Imported lazily: telemetry must not import the engine at module
    # scope (the engine imports telemetry during package init).
    from repro.engine.dataplane import SEGMENT_PREFIX

    if not _SHM_DIR.is_dir():
        return None
    total = 0
    try:
        for entry in _SHM_DIR.iterdir():
            if entry.name.startswith(SEGMENT_PREFIX):
                try:
                    total += entry.stat().st_size
                except OSError:
                    continue
    except OSError:
        return None
    return total


# ----------------------------------------------------------------------
# the sampler

class ResourceSampler:
    """Background ``/proc`` sampler feeding ``resource.*`` gauges.

    Parameters
    ----------
    recorder:
        The recorder gauges are written to (the same one the run's
        trace and metrics exporter read).
    interval:
        Seconds between samples (default 0.2).

    Gauges written per sample
    -------------------------
    ``resource.rss_bytes`` / ``resource.rss_peak_bytes``
        Parent-process resident set, current and run peak.
    ``resource.cpu_seconds``
        Parent-process cumulative CPU (user+system).
    ``resource.workers``
        Announced worker PIDs still alive.
    ``resource.workers.rss_bytes`` / ``resource.workers.rss_peak_bytes``
        Sum of live workers' RSS, and the largest single-worker peak.
    ``resource.workers.cpu_seconds``
        Sum of the last-known CPU seconds across workers.
    ``resource.worker.<pid>.rss_peak_bytes`` / ``...cpu_seconds``
        Per-worker attribution keys, joinable against the ``worker``
        attribute on ``engine.job`` spans.
    ``resource.shm_bytes`` / ``resource.shm_peak_bytes``
        Live data-plane segment bytes in ``/dev/shm``, and the peak.

    A ``resource.samples`` counter tracks how many samples were taken.
    """

    def __init__(self, recorder: Recorder, *, interval: float = 0.2) -> None:
        if not isinstance(interval, (int, float)) or interval <= 0:
            raise ValidationError(
                f"sampler interval must be a positive number, got {interval!r}"
            )
        self.recorder = recorder
        self.interval = float(interval)
        self.enabled = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._pid = os.getpid()
        self._rss_peak = 0.0
        self._shm_peak = 0.0
        self._worker_state: dict[int, dict[str, float]] = {}

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "ResourceSampler":
        """Start the sampling thread (no-op off-Linux; chainable)."""
        if not sampling_supported():
            return self  # documented no-op fallback: enabled stays False
        if self._thread is not None:
            raise ValidationError("sampler is already running")
        self.enabled = True
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and take one final sample (idempotent).

        The final sample guarantees that even a run shorter than one
        interval records its resource gauges.
        """
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)
        if self.enabled:
            self.sample_once()
        self.enabled = False

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    # -- sampling ------------------------------------------------------

    def worker_peaks(self) -> dict[int, dict[str, float]]:
        """Per-worker ``{"rss_peak_bytes", "cpu_seconds"}`` (a copy)."""
        return {pid: dict(state) for pid, state in self._worker_state.items()}

    def sample_once(self) -> None:
        """Take one sample and publish the gauges (also used one-shot)."""
        gauge = self.recorder.gauge
        parent = read_process(self._pid)
        if parent is not None:
            self._rss_peak = max(self._rss_peak, parent["rss_bytes"])
            gauge("resource.rss_bytes", parent["rss_bytes"])
            gauge("resource.rss_peak_bytes", self._rss_peak)
            gauge("resource.cpu_seconds", parent["cpu_seconds"])

        live = 0
        rss_sum = 0.0
        for pid in sorted(announced_workers()):
            reading = read_process(pid)
            state = self._worker_state.setdefault(
                pid, {"rss_peak_bytes": 0.0, "cpu_seconds": 0.0}
            )
            if reading is None:
                continue  # dead worker: keep its recorded peaks
            live += 1
            rss_sum += reading["rss_bytes"]
            state["rss_peak_bytes"] = max(
                state["rss_peak_bytes"], reading["rss_bytes"]
            )
            state["cpu_seconds"] = reading["cpu_seconds"]
        if self._worker_state:
            gauge("resource.workers", float(live))
            gauge("resource.workers.rss_bytes", rss_sum)
            gauge(
                "resource.workers.rss_peak_bytes",
                max(s["rss_peak_bytes"] for s in self._worker_state.values()),
            )
            gauge(
                "resource.workers.cpu_seconds",
                sum(s["cpu_seconds"] for s in self._worker_state.values()),
            )
            for pid, state in self._worker_state.items():
                gauge(
                    f"resource.worker.{pid}.rss_peak_bytes",
                    state["rss_peak_bytes"],
                )
                gauge(f"resource.worker.{pid}.cpu_seconds", state["cpu_seconds"])

        shm = read_shm_bytes()
        if shm is not None:
            self._shm_peak = max(self._shm_peak, float(shm))
            gauge("resource.shm_bytes", float(shm))
            gauge("resource.shm_peak_bytes", self._shm_peak)

        self.recorder.count("resource.samples")

    def __repr__(self) -> str:
        return (
            f"ResourceSampler(interval={self.interval}, "
            f"enabled={self.enabled})"
        )
