"""Iteration-level convergence tracking for iterative kernels.

Spans (PR 4) bound a kernel in time; this module opens the box between
``em.fit`` start and end.  An :class:`IterationTracker` collects one
record per iteration — objective value (log-likelihood, log-posterior,
CV score), delta norm, damping/step rejections, condition numbers —
and, on :meth:`~IterationTracker.finish`, serializes the trajectory as
a versioned ``repro-convergence/v1`` payload attached to the owning
span's attributes, where the schema validator, the trace viewer's
``convergence:`` section, ``repro trace diff``, and the manifest's
per-job summaries all find it.

The tracker follows the same fast-path discipline as spans: kernels
call :func:`repro.telemetry.trace.iterations`, which returns the
shared no-op :data:`NULL_TRACKER` singleton when tracing is disabled.
:meth:`~IterationTracker.record` takes *named scalar parameters only*
— no ``**kwargs`` — so the disabled path allocates neither dicts nor
lists, and kernels guard any derived statistics (a condition number, a
vectorized max) behind ``tracker.enabled`` so the disabled path never
computes them either.  The combined budget is pinned under 2% by the
``telemetry.convergence`` bench case and its regression test.

While a fit runs, the tracker also feeds ``kernel.<name>.*`` heartbeat
gauges and counters into the recorder, which the metrics exporter
ships to the ring file the ``repro watch`` dashboard tails.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # imports for annotations only — this module sits
    # below schema.py in the package's import order and must not pull
    # in recorder (which imports schema) at runtime.
    from repro.telemetry.recorder import Recorder
    from repro.telemetry.spans import Span

__all__ = [
    "CONVERGENCE_SCHEMA",
    "IterationTracker",
    "NULL_TRACKER",
    "collect_payloads",
    "summarize_payloads",
    "payload_scalar",
    "trajectory_values",
]

#: Version tag of the convergence payload format.  Bump on incompatible
#: layout changes; unknown ``repro-convergence/*`` versions downgrade
#: to a named validation *warning* (forward compatibility).
CONVERGENCE_SCHEMA = "repro-convergence/v1"

#: Trajectory points retained per tracker.  Kernels with more
#: iterations than this (a long Kalman series, a pathological ascent)
#: keep counting — iterations, finals, rejections stay exact — but
#: stop appending points and mark the payload ``truncated``.
MAX_TRAJECTORY = 512

#: Condition numbers are capped here so heartbeat gauges stay finite:
#: both the metrics exporter and the trace writer serialize with
#: ``allow_nan=False``.
CONDITION_CAP = 1e300


class _NullTracker:
    """Shared do-nothing tracker handed out while tracing is disabled.

    Mirrors the ``NULL_SPAN`` discipline: one process-wide instance,
    ``__slots__ = ()``, every method a constant-time no-op.  Kernels
    test :attr:`enabled` before computing anything a record would need
    (norms, condition numbers), so the disabled hot path is a single
    attribute read per iteration.
    """

    __slots__ = ()

    #: Always ``False``; kernels guard derived statistics behind this.
    enabled = False

    def record(
        self,
        objective: float | None = None,
        delta: float | None = None,
        condition: float | None = None,
        rejected: int = 0,
    ) -> None:
        """Ignore one iteration record (tracing is disabled)."""
        return None

    def finish(self, converged: bool | None = None) -> None:
        """Ignore the end-of-fit signal (tracing is disabled)."""
        return None


#: The singleton no-op tracker :func:`repro.telemetry.trace.iterations`
#: hands out while tracing is disabled — reused, never allocated.
NULL_TRACKER = _NullTracker()


class IterationTracker:
    """Collects per-iteration convergence records for one kernel fit.

    Parameters
    ----------
    kernel:
        Dotted kernel label, e.g. ``"em.fit"`` or ``"map_gd.ascent"``;
        names the payload, the ``kernel.<name>.*`` heartbeat gauges,
        and the viewer's per-kernel aggregation.
    recorder:
        The active recorder receiving heartbeat gauges/counters, or
        ``None`` for a detached tracker (payload only).
    span:
        The owning span the finished payload is attached to, or
        ``None`` when no span is open (heartbeats still flow).

    Storage is columnar — parallel lists of floats — so a thousand
    iterations cost three list appends each, not a thousand dicts.
    """

    __slots__ = (
        "kernel",
        "enabled",
        "iterations",
        "rejections",
        "nonfinite",
        "truncated",
        "_recorder",
        "_span",
        "_objective",
        "_delta",
        "_condition",
        "_last_objective",
        "_last_delta",
    )

    def __init__(
        self,
        kernel: str,
        recorder: Recorder | None = None,
        span: Span | None = None,
    ) -> None:
        self.kernel = kernel
        #: Always ``True`` on a live tracker (counterpart of the null
        #: tracker's ``False``); kernels branch on this, not on type.
        self.enabled = True
        self.iterations = 0
        self.rejections = 0
        self.nonfinite = 0
        self.truncated = False
        self._recorder = recorder
        self._span = span
        self._objective: list[float] = []
        self._delta: list[float] = []
        self._condition: list[float] = []
        self._last_objective: float | None = None
        self._last_delta: float | None = None

    # ------------------------------------------------------------------
    # recording

    def record(
        self,
        objective: float | None = None,
        delta: float | None = None,
        condition: float | None = None,
        rejected: int = 0,
    ) -> None:
        """Record one iteration of the kernel.

        Parameters
        ----------
        objective:
            The iteration's objective value (log-likelihood,
            log-posterior, CV score).  Non-finite values are stored
            verbatim in the trajectory (they serialize as the
            ``"__nan__"``/``"__inf__"`` sentinels) and counted in
            :attr:`nonfinite`, but never reach the heartbeat gauges.
        delta:
            Convergence increment — log-likelihood improvement, step
            norm, bracket width; same non-finite handling.
        condition:
            A condition number observed this iteration, capped at
            :data:`CONDITION_CAP` to stay JSON-finite.
        rejected:
            Number of rejected proposals this iteration (step
            halvings, jitter retries).
        """
        self.iterations += 1
        if rejected:
            self.rejections += int(rejected)
        room = self.iterations <= MAX_TRAJECTORY
        if not room and not self.truncated:
            self.truncated = True
        obj: float | None = None
        if objective is not None:
            obj = float(objective)
            if not math.isfinite(obj):
                self.nonfinite += 1
            self._last_objective = obj
            if room:
                self._objective.append(obj)
        inc: float | None = None
        if delta is not None:
            inc = float(delta)
            if not math.isfinite(inc):
                self.nonfinite += 1
            self._last_delta = inc
            if room:
                self._delta.append(inc)
        cond: float | None = None
        if condition is not None:
            cond = float(condition)
            if not math.isfinite(cond) or cond > CONDITION_CAP:
                cond = CONDITION_CAP
            if room:
                self._condition.append(cond)
        recorder = self._recorder
        if recorder is not None:
            prefix = "kernel." + self.kernel
            recorder.gauge(prefix + ".iterations", float(self.iterations))
            if obj is not None and math.isfinite(obj):
                recorder.gauge(prefix + ".objective", obj)
            if inc is not None and math.isfinite(inc):
                recorder.gauge(prefix + ".delta", inc)
            if cond is not None:
                recorder.gauge(prefix + ".condition", cond)

    def finish(
        self, converged: bool | None = None
    ) -> dict[str, Any]:
        """Close the fit: attach the payload to the owning span.

        Parameters
        ----------
        converged:
            Whether the kernel reached its convergence criterion;
            ``None`` when the kernel has no binary notion of success
            (e.g. a fixed-sweep filter).

        Returns
        -------
        dict
            The ``repro-convergence/v1`` payload.  It is attached to
            the owning span's ``attrs["convergence"]`` — unless the
            span already carries one (one tracker per span; extras are
            dropped and counted on ``telemetry.convergence.dropped``)
            — and summarized into ``kernel.<name>.*`` heartbeats.
        """
        payload = self.payload(converged=converged)
        recorder = self._recorder
        if recorder is not None:
            prefix = "kernel." + self.kernel
            recorder.count(prefix + ".fits")
            if self.rejections:
                recorder.count(prefix + ".rejections", self.rejections)
            if self.nonfinite:
                recorder.count(prefix + ".nonfinite", self.nonfinite)
            if converged is not None:
                recorder.gauge(
                    prefix + ".converged", 1.0 if converged else 0.0
                )
                if not converged:
                    recorder.count(prefix + ".nonconverged")
        span = self._span
        if span is not None:
            if "convergence" in span.attrs:
                if recorder is not None:
                    recorder.count("telemetry.convergence.dropped")
            else:
                span.attrs["convergence"] = payload
        return payload

    def payload(
        self, *, converged: bool | None = None
    ) -> dict[str, Any]:
        """The current state as a ``repro-convergence/v1`` payload."""
        payload: dict[str, Any] = {
            "schema": CONVERGENCE_SCHEMA,
            "kernel": self.kernel,
            "iterations": self.iterations,
            "rejections": self.rejections,
            "nonfinite": self.nonfinite,
        }
        if converged is not None:
            payload["converged"] = bool(converged)
        if self.truncated:
            payload["truncated"] = True
        if self._last_objective is not None:
            payload["final_objective"] = self._last_objective
        if self._last_delta is not None:
            payload["final_delta"] = self._last_delta
        if self._objective:
            payload["objective"] = list(self._objective)
        if self._delta:
            payload["delta"] = list(self._delta)
        if self._condition:
            payload["condition"] = list(self._condition)
        return payload

    def __repr__(self) -> str:
        return (
            f"IterationTracker({self.kernel!r}, "
            f"iterations={self.iterations}, "
            f"rejections={self.rejections})"
        )


# ----------------------------------------------------------------------
# payload traversal (serialized span trees)


def collect_payloads(span: Any) -> list[dict[str, Any]]:
    """Every convergence payload in a serialized span (sub)tree.

    Parameters
    ----------
    span:
        A span *dict* as found in a trace document's ``spans`` list or
        a worker fragment's ``span`` entry; anything else yields ``[]``
        (pre-convergence traces therefore collect cleanly to nothing).

    Returns
    -------
    list of dict
        Payloads in depth-first pre-order.  Any ``repro-convergence/*``
        version is collected; consumers that care about the exact
        version check ``payload["schema"]`` themselves.
    """
    found: list[dict[str, Any]] = []
    if not isinstance(span, dict):
        return found
    attrs = span.get("attrs")
    if isinstance(attrs, dict):
        payload = attrs.get("convergence")
        if isinstance(payload, dict) and str(
            payload.get("schema", "")
        ).startswith("repro-convergence/"):
            found.append(payload)
    children = span.get("children")
    if isinstance(children, list):
        for child in children:
            found.extend(collect_payloads(child))
    return found


#: JSON sentinel strings mapped back to the non-finite floats they
#: stand for — the inverse of ``sanitize_for_json``'s replacement.
_SENTINEL_FLOATS = {
    "__nan__": math.nan,
    "__inf__": math.inf,
    "__-inf__": -math.inf,
}


def _restore_float(value: Any) -> float | None:
    """A payload number as a float, decoding non-finite sentinels."""
    if isinstance(value, str):
        return _SENTINEL_FLOATS.get(value)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def payload_scalar(payload: dict[str, Any], field: str) -> float | None:
    """A scalar payload field as a float (sentinels decoded), or None.

    Use for ``final_objective`` / ``final_delta``, which a round-tripped
    trace document stores as ``"__nan__"``-style strings when the kernel
    produced a non-finite value.
    """
    return _restore_float(payload.get(field))


def trajectory_values(payload: dict[str, Any], field: str) -> list[float]:
    """A trajectory list as floats, decoding non-finite sentinels.

    Unrecognized entries (a foreign future type) are skipped rather
    than raised on — viewers must render what they can of a payload
    written by a newer build.
    """
    series = payload.get(field)
    if not isinstance(series, list):
        return []
    values: list[float] = []
    for entry in series:
        restored = _restore_float(entry)
        if restored is not None:
            values.append(restored)
    return values


def summarize_payloads(
    payloads: list[dict[str, Any]],
) -> dict[str, dict[str, int]]:
    """Fold payloads into the per-kernel summary manifests record.

    Returns
    -------
    dict
        ``kernel -> {fits, iterations, rejections, nonfinite,
        nonconverged}`` with integer values only — compact enough for
        a manifest job row, rich enough to flag a sick job.
    """
    summary: dict[str, dict[str, int]] = {}
    for payload in payloads:
        if not isinstance(payload, dict):
            continue
        kernel = str(payload.get("kernel", "?"))
        entry = summary.setdefault(
            kernel,
            {
                "fits": 0,
                "iterations": 0,
                "rejections": 0,
                "nonfinite": 0,
                "nonconverged": 0,
            },
        )
        entry["fits"] += 1
        for field in ("iterations", "rejections", "nonfinite"):
            value = payload.get(field)
            if isinstance(value, int) and not isinstance(value, bool):
                entry[field] += value
        if payload.get("converged") is False:
            entry["nonconverged"] += 1
    return summary
