"""Benchmark runner: timing harness, JSON payload, baseline comparison.

The runner is what ``repro bench`` drives.  Protocol per case: call the
registered setup factory (untimed), run the workload once as warmup,
then ``repeat`` timed runs with :func:`time.perf_counter`.  The *minimum*
is the headline number — it is the least noise-contaminated statistic
for a deterministic workload — and every raw timing is kept in the
payload so later analysis can second-guess that choice.

Payload schema (``schema`` field = ``"repro-bench/v1"``)::

    {
      "schema": "repro-bench/v1",
      "created_unix": 1753800000.0,
      "python": "3.11.7", "numpy": "1.26.4", "platform": "Linux-...",
      "filter": "smoke", "repeat": 3,
      "benchmarks": {
        "hotpath.em_recon.large": {
          "group": "hotpath", "tags": ["large"],
          "params": {"n_records": 100000, "n_bins": 64},
          "seconds": [1.91, 1.90, 1.93],
          "seconds_min": 1.90, "seconds_mean": 1.913,
          "resource": {"rss_bytes": 123456789, "cpu_seconds": 5.71}
        }, ...
      }
    }

Baseline comparisons read the same schema, so any previous ``BENCH_*.
json`` — including the committed ``benchmarks/baselines/BENCH_BASELINE.
json`` — can serve as the reference.
"""

from __future__ import annotations

import importlib.util
import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

from repro.bench.registry import BenchmarkCase, iter_benchmarks
from repro.exceptions import ValidationError
from repro.telemetry import Recorder, build_manifest, trace, write_trace
from repro.telemetry.sampler import read_process, sampling_supported

__all__ = [
    "SCHEMA",
    "time_case",
    "run_benchmarks",
    "write_payload",
    "load_payload",
    "compare_to_baseline",
    "render_report",
    "render_comparison",
    "default_baseline_path",
]

SCHEMA = "repro-bench/v1"

#: Regression threshold for :func:`compare_to_baseline`: a benchmark is
#: flagged when it runs this many times slower than the baseline.
DEFAULT_REGRESSION_RATIO = 1.5

#: Noise threshold: a case whose timings scatter more than this
#: (stddev / mean) is too noisy for a hard pass/fail verdict.
DEFAULT_NOISE_REL_STDDEV = 0.10


def time_case(case: BenchmarkCase, *, repeat: int = 3) -> dict:
    """Time one benchmark case and return its payload entry.

    Parameters
    ----------
    case:
        The registered case to run.
    repeat:
        Timed repetitions after one untimed warmup run; the case's own
        ``repeat`` attribute, when set, wins.

    Returns
    -------
    dict
        Payload entry with ``seconds`` (raw timings), ``seconds_min``,
        and ``seconds_mean``.
    """
    runs = case.repeat if case.repeat is not None else repeat
    if runs < 1:
        raise ValidationError(f"repeat must be >= 1, got {runs}")
    workload = case.setup()
    # Per-case resource attribution: /proc readings before and after the
    # timed block give this case's CPU burn and the RSS it left behind
    # (rss_max is the process peak so far — the case that first pushes
    # it up is the one that owns the spike).
    resources_before = (
        read_process(os.getpid()) if sampling_supported() else None
    )
    # One bench.case span covers warmup plus every timed run, so a
    # traced bench (``repro bench --trace``) shows each case's full
    # wall-clock alongside the spans its workload emits internally.
    with trace.span("bench.case", case=case.name, runs=runs) as span:
        workload()  # warmup: first-call costs (imports, allocator) are not the routine
        timings = []
        returned: object = None
        for _ in range(runs):
            started = time.perf_counter()
            returned = workload()
            timings.append(time.perf_counter() - started)
        span.set(seconds_min=min(timings))
        if resources_before is not None:
            after = read_process(os.getpid())
            if after is not None:
                span.set(rss_bytes=after["rss_bytes"])
    entry = {
        "group": case.group,
        "tags": list(case.tags),
        "params": case.params,
        "seconds": timings,
        "seconds_min": min(timings),
        "seconds_mean": sum(timings) / len(timings),
    }
    if resources_before is not None and after is not None:
        entry["resource"] = {
            "rss_bytes": after["rss_bytes"],
            "cpu_seconds": round(
                after["cpu_seconds"] - resources_before["cpu_seconds"], 4
            ),
        }
    if case.record_extra:
        if not isinstance(returned, dict):
            raise ValidationError(
                f"benchmark {case.name!r} sets record_extra but its "
                f"workload returned {type(returned).__name__}, expected "
                "a JSON-safe dict"
            )
        entry["extra"] = returned
    return entry


def run_benchmarks(
    *,
    filter_token: str | None = None,
    repeat: int = 3,
    progress=None,
) -> dict:
    """Run every matching benchmark and return the full payload.

    Parameters
    ----------
    filter_token:
        Substring-of-name or exact-tag filter (``None`` runs all).
    repeat:
        Default timed repetitions per case.
    progress:
        Optional callable invoked as ``progress(case, entry)`` after
        each case finishes — the CLI uses it for incremental output.
    """
    cases = iter_benchmarks(filter_token)
    if not cases:
        raise ValidationError(
            f"no benchmarks match filter {filter_token!r}; "
            "run 'repro bench --list' to see the registered cases"
        )
    benchmarks: dict[str, dict] = {}
    for case in cases:
        entry = time_case(case, repeat=repeat)
        benchmarks[case.name] = entry
        if progress is not None:
            progress(case, entry)
    return {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "filter": filter_token,
        "repeat": repeat,
        "benchmarks": benchmarks,
    }


def _find_bench_utils() -> pathlib.Path | None:
    """Locate ``benchmarks/_bench_utils.py`` relative to the CWD.

    Walks from the current directory upward so ``repro bench`` run from
    a repo subdirectory still lands its copy in ``benchmarks/results/``.
    Returns ``None`` outside a checkout (installed-package usage).
    """
    here = pathlib.Path.cwd().resolve()
    for candidate in (here, *here.parents):
        utils = candidate / "benchmarks" / "_bench_utils.py"
        if utils.is_file():
            return utils
    return None


def write_payload(payload: dict, json_path) -> list[pathlib.Path]:
    """Write the payload to ``json_path`` (and mirror into the repo).

    Always writes ``json_path`` itself.  When run inside the repository,
    the payload is additionally registered through the benchmark suite's
    existing ``_bench_utils.emit_json`` helper, which persists a copy
    under ``benchmarks/results/<stem>.json`` and queues it for the
    pytest-session summary — keeping CLI runs and ``pytest benchmarks/``
    runs in one results directory.

    Returns the list of paths written.
    """
    path = pathlib.Path(json_path)
    text = json.dumps(payload, indent=2, sort_keys=True)
    path.write_text(text + "\n")
    written = [path]

    utils_path = _find_bench_utils()
    if utils_path is not None:
        spec = importlib.util.spec_from_file_location(
            "_bench_utils", utils_path
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        results_copy = utils_path.parent / "results" / f"{path.stem}.json"
        if results_copy.resolve() != path.resolve():
            module.emit_json(path.stem, payload)
            written.append(results_copy)
    return written


def load_payload(json_path) -> dict:
    """Load and minimally validate a ``BENCH_*.json`` payload."""
    path = pathlib.Path(json_path)
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict) or "benchmarks" not in payload:
        raise ValidationError(
            f"{path} is not a repro-bench payload (no 'benchmarks' key)"
        )
    return payload


def default_baseline_path() -> pathlib.Path | None:
    """The committed baseline, when running inside the repository."""
    utils = _find_bench_utils()
    if utils is None:
        return None
    candidate = utils.parent / "baselines" / "BENCH_BASELINE.json"
    return candidate if candidate.is_file() else None


def _relative_stddev(timings: list) -> float:
    """Population stddev of the timings, relative to their mean."""
    if len(timings) < 2:
        return 0.0
    mean = sum(timings) / len(timings)
    if mean <= 0.0:
        return 0.0
    variance = sum((t - mean) ** 2 for t in timings) / len(timings)
    return (variance ** 0.5) / mean


def compare_to_baseline(
    payload: dict,
    baseline: dict,
    *,
    regression_ratio: float = DEFAULT_REGRESSION_RATIO,
    noise_rel_stddev: float = DEFAULT_NOISE_REL_STDDEV,
) -> dict:
    """Compare a run against a baseline payload, benchmark by benchmark.

    Parameters
    ----------
    payload, baseline:
        Two ``repro-bench/v1`` payloads; only benchmarks present in both
        are compared (on ``seconds_min``).
    regression_ratio:
        ``current / baseline`` above this flags a regression.
    noise_rel_stddev:
        Relative stddev of the current run's raw timings above which a
        case is too noisy to trust: an over-threshold ratio there lands
        in ``unreliable`` instead of ``regressions``, so one loaded CI
        machine cannot hard-fail the gate.

    Returns
    -------
    dict
        ``{"rows", "regressions", "unreliable", "missing"}`` where each
        row has ``name``, ``baseline_s``, ``current_s``, ``ratio``
        (<1 = faster than baseline), ``speedup`` (baseline/current,
        >1 = faster), ``rel_stddev``, and ``noisy``.
    """
    rows = []
    regressions = []
    unreliable = []
    base_benchmarks = baseline.get("benchmarks", {})
    for name, entry in payload["benchmarks"].items():
        base = base_benchmarks.get(name)
        if base is None:
            continue
        baseline_s = float(base["seconds_min"])
        current_s = float(entry["seconds_min"])
        ratio = current_s / baseline_s if baseline_s > 0.0 else float("inf")
        rel_stddev = _relative_stddev(
            [float(t) for t in entry.get("seconds", [])]
        )
        noisy = rel_stddev > noise_rel_stddev
        rows.append(
            {
                "name": name,
                "baseline_s": baseline_s,
                "current_s": current_s,
                "ratio": ratio,
                "speedup": 1.0 / ratio if ratio > 0.0 else float("inf"),
                "rel_stddev": rel_stddev,
                "noisy": noisy,
            }
        )
        if ratio > regression_ratio:
            if noisy:
                unreliable.append(name)
            else:
                regressions.append(name)
    missing = sorted(set(payload["benchmarks"]) - set(base_benchmarks))
    return {
        "rows": rows,
        "regressions": regressions,
        "unreliable": unreliable,
        "missing": missing,
    }


def render_report(payload: dict) -> str:
    """Human-readable table of one run's timings."""
    lines = [f"{'benchmark':<42} {'min (s)':>10} {'mean (s)':>10}"]
    lines.append("-" * 64)
    for name, entry in payload["benchmarks"].items():
        lines.append(
            f"{name:<42} {entry['seconds_min']:>10.4f} "
            f"{entry['seconds_mean']:>10.4f}"
        )
    return "\n".join(lines)


def render_comparison(comparison: dict) -> str:
    """Human-readable table of a baseline comparison."""
    rows = comparison["rows"]
    if not rows:
        return "no overlapping benchmarks between run and baseline"
    lines = [
        f"{'benchmark':<42} {'base (s)':>10} {'now (s)':>10} "
        f"{'speedup':>9} {'stddev':>7}"
    ]
    lines.append("-" * 82)
    for row in rows:
        marker = ""
        if row["name"] in comparison["regressions"]:
            marker = "  << REGRESSION"
        elif row["name"] in comparison.get("unreliable", []):
            marker = "  ?? slow but noisy (unreliable)"
        elif row.get("noisy"):
            marker = "  ~ noisy"
        lines.append(
            f"{row['name']:<42} {row['baseline_s']:>10.4f} "
            f"{row['current_s']:>10.4f} {row['speedup']:>8.2f}x "
            f"{row.get('rel_stddev', 0.0):>6.1%}{marker}"
        )
    if comparison["missing"]:
        lines.append(
            f"(not in baseline: {', '.join(comparison['missing'])})"
        )
    return "\n".join(lines)


def _main_history(files: list, args) -> int:
    """The ``repro bench history RESULTS...`` sub-mode."""
    from repro.telemetry import build_history, render_history

    if not files:
        print(
            "error: 'repro bench history' needs at least one "
            "BENCH_*.json results file",
            file=sys.stderr,
        )
        return 2
    payloads = []
    for path in files:
        try:
            payloads.append(load_payload(path))
        except (OSError, json.JSONDecodeError, ValidationError) as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
    baseline = None
    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        baseline_path = default_baseline_path()
    if baseline_path is not None and not args.no_baseline:
        try:
            baseline = load_payload(baseline_path)
        except (OSError, json.JSONDecodeError, ValidationError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
    history = build_history(
        payloads, baseline=baseline, regression_ratio=args.max_regression
    )
    print(render_history(history))
    if args.json is not None:
        path = pathlib.Path(args.json)
        path.write_text(
            json.dumps(history, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {path}", file=sys.stderr)
    if history["regressions"] and args.fail_on_regression:
        print(
            f"error: {len(history['regressions'])} case(s) regressed "
            f"beyond {args.max_regression:.2f}x baseline",
            file=sys.stderr,
        )
        return 1
    return 0


def main_bench(args) -> int:
    """Entry point for the ``repro bench`` subcommand."""
    import repro.bench.dataplane  # noqa: F401  (registration side effects)
    import repro.bench.hotpaths  # noqa: F401
    import repro.bench.pipelines  # noqa: F401
    import repro.bench.telemetry  # noqa: F401

    action = list(getattr(args, "action", []) or [])
    if action:
        if action[0] != "history":
            print(
                f"error: unknown bench subcommand {action[0]!r} "
                "(expected 'history RESULTS...')",
                file=sys.stderr,
            )
            return 2
        return _main_history(action[1:], args)

    if args.list:
        cases = iter_benchmarks(args.filter)
        if not cases:
            # Same contract as run mode: a filter matching nothing is an
            # error, so typos surface in --list previews too.
            print(
                f"error: no benchmarks match filter {args.filter!r}",
                file=sys.stderr,
            )
            return 2
        for case in cases:
            tags = ",".join(case.tags)
            print(f"{case.name:<42} [{tags}] {case.params}")
        return 0

    def progress(case, entry):
        print(
            f"{case.name:<42} {entry['seconds_min']:.4f}s "
            f"(mean {entry['seconds_mean']:.4f}s over "
            f"{len(entry['seconds'])} runs)",
            file=sys.stderr,
        )

    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    recorder = (
        Recorder()
        if trace_path is not None or metrics_path is not None
        else None
    )
    try:
        if recorder is not None:
            from repro.telemetry import run_health

            with trace.recording(recorder):
                with run_health(
                    recorder,
                    metrics_path=metrics_path,
                    interval=getattr(args, "metrics_interval", 1.0),
                ):
                    payload = run_benchmarks(
                        filter_token=args.filter,
                        repeat=args.repeat,
                        progress=progress,
                    )
            if metrics_path is not None:
                print(f"wrote metrics {metrics_path}", file=sys.stderr)
        else:
            payload = run_benchmarks(
                filter_token=args.filter, repeat=args.repeat, progress=progress
            )
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(render_report(payload))

    if recorder is not None and trace_path is not None:
        # The manifest's timing table reuses the headline numbers, so a
        # trace file is self-contained even without the BENCH_*.json.
        manifest = build_manifest(
            rows=[
                {
                    "key": name,
                    "duration": entry["seconds_min"],
                    "cached": False,
                }
                for name, entry in payload["benchmarks"].items()
            ],
            extra={"command": "bench", "filter": args.filter},
        )
        written = write_trace(
            recorder.to_document(manifest=manifest), trace_path
        )
        print(f"wrote trace {written}", file=sys.stderr)

    if args.json is not None:
        for path in write_payload(payload, args.json):
            print(f"wrote {path}", file=sys.stderr)

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        baseline_path = default_baseline_path()
    if baseline_path is not None and not args.no_baseline:
        try:
            baseline = load_payload(baseline_path)
        except (OSError, json.JSONDecodeError, ValidationError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        comparison = compare_to_baseline(
            payload, baseline, regression_ratio=args.max_regression
        )
        print()
        print(f"vs baseline {baseline_path}:")
        print(render_comparison(comparison))
        if comparison["regressions"] and args.fail_on_regression:
            print(
                f"error: {len(comparison['regressions'])} benchmark(s) "
                f"regressed beyond {args.max_regression:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0
