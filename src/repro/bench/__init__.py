"""First-class benchmark subsystem behind ``repro bench``.

Times the numerical hot paths (:mod:`repro.bench.hotpaths`) and the full
figure pipelines through the engine (:mod:`repro.bench.pipelines`),
emits machine-readable ``BENCH_*.json`` payloads, and compares runs
against the committed baseline in ``benchmarks/baselines/``.  See
``docs/benchmarking.md`` for the workflow and payload schema.

Importing this package only loads the registry machinery; the benchmark
definitions themselves register on import of the two submodules (the CLI
does that), so ``import repro.bench`` stays cheap.
"""

from repro.bench.registry import (
    BenchmarkCase,
    all_benchmarks,
    iter_benchmarks,
    register_benchmark,
)
from repro.bench.runner import (
    SCHEMA,
    compare_to_baseline,
    load_payload,
    render_comparison,
    render_report,
    run_benchmarks,
    time_case,
    write_payload,
)

__all__ = [
    "SCHEMA",
    "BenchmarkCase",
    "all_benchmarks",
    "compare_to_baseline",
    "iter_benchmarks",
    "load_payload",
    "register_benchmark",
    "render_comparison",
    "render_report",
    "run_benchmarks",
    "time_case",
    "write_payload",
]
