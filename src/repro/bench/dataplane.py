"""Data-plane benchmarks: backend axis, shard pipeline, scaling curve.

Two families:

* ``pipeline.dataplane.{smoke,large}`` time the shard pipeline — a
  dataset published once to a :class:`~repro.engine.dataplane.DataPlane`
  and attacked shard-by-shard through the shared-memory backend.  The
  ``large`` variant runs the acceptance-scale regime (``n_records =
  10^7``, a ~300 MB segment).
* ``pipeline.dataplane.scaling.{smoke,large}`` sweep the same workload
  across the backend axis (serial reference, pickle-transport pool,
  shared-memory pool) and a worker-count curve, recording wall-clock
  seconds and the peak worker RSS per configuration as structured
  ``extra`` payload (``record_extra=True``) — the machine-readable
  scaling curve ``repro bench --json`` ships to CI.

The probe task self-reports ``ru_maxrss`` from inside each worker, so
the RSS column reflects what the *transport* made resident: the pickle
pool materializes a private copy of the published array per chunk, while
shared-memory workers only fault in the shard pages they touch.
"""

from __future__ import annotations

import resource
import time
from typing import Any

import numpy as np

from repro.bench.registry import register_benchmark

__all__ = []  # everything here registers via side effect

#: Scheme and attack battery shared by every data-plane case; additive
#: noise plus the spectral-filtering attack keeps per-shard cost linear
#: in rows so timings isolate transport, not attack math.
_SCHEME = {"kind": "additive", "std": 2.0}
_ATTACKS = {"SF": {"kind": "sf"}}


def shard_probe(
    params: dict[str, Any], rng: np.random.Generator | None
) -> dict[str, Any]:
    """Bench-only worker task: :func:`attack_shard` plus a memory probe.

    The ``max_rss_kb`` reading makes the payload non-deterministic, so
    this task is never cached — the bench harness always runs with the
    cache disabled — and it is *not* part of the cross-backend parity
    surface (``attack_shard`` itself is).
    """
    from repro.api.tasks import attack_shard

    payload = attack_shard(params, rng)
    usage = resource.getrusage(resource.RUSAGE_SELF)
    payload["max_rss_kb"] = int(usage.ru_maxrss)
    return payload


def _publish_dataset(n_records: int, n_features: int = 4):
    """A plane holding one deterministic dataset, plus its ref."""
    from repro.engine import DataPlane

    rng = np.random.default_rng(20050608)
    data = rng.normal(size=(n_records, n_features))
    plane = DataPlane()
    ref = plane.publish(data)
    return plane, ref


def _shard_specs(ref, n_shards: int, task: str):
    """One job per contiguous shard, engine-seeded per shard index."""
    from repro.engine import JobSpec

    rows = ref.shape[0]
    bounds = np.linspace(0, rows, n_shards + 1, dtype=int)
    return [
        JobSpec(
            task=task,
            params={
                "data": ref.shard(int(start), int(stop)).to_param(),
                "scheme": _SCHEME,
                "attacks": _ATTACKS,
            },
            seed_root=2005,
            seed_path=(index,),
        )
        for index, (start, stop) in enumerate(
            zip(bounds[:-1], bounds[1:])
        )
    ]


def _run_backend(plane, specs, backend: str, workers: int):
    """Execute the shard grid on one backend; returns the results."""
    from repro.engine import create_backend
    from repro.engine.dataplane import activate

    executor = create_backend(backend, workers=workers, chunk_size=1)
    with activate(plane):
        return executor.run(specs)


def _dataplane_setup(n_records: int, n_shards: int, workers: int):
    plane, ref = _publish_dataset(n_records)
    specs = _shard_specs(ref, n_shards, "repro.api.tasks:attack_shard")

    def run():
        return _run_backend(plane, specs, "shared-memory", workers)

    return run


def _scaling_setup(n_records: int, n_shards: int, curve):
    """Workload measuring every (backend, workers) point in ``curve``.

    Returns the structured scaling curve the runner records as the
    entry's ``extra`` field.  Peak RSS is the maximum worker
    self-report; the serial point reports this process instead, which
    is the honest in-process number.
    """
    plane, ref = _publish_dataset(n_records)
    specs = _shard_specs(ref, n_shards, "repro.bench.dataplane:shard_probe")

    def run() -> dict[str, Any]:
        points = []
        for backend, workers in curve:
            started = time.perf_counter()
            results = _run_backend(plane, specs, backend, workers)
            seconds = time.perf_counter() - started
            peak_rss = max(
                int(result.values.get("max_rss_kb", 0))
                for result in results
            )
            points.append(
                {
                    "backend": backend,
                    "workers": workers,
                    "seconds": seconds,
                    "peak_worker_rss_kb": peak_rss,
                }
            )
        return {
            "schema": "repro-dataplane-scaling/v1",
            "n_records": ref.shape[0],
            "n_shards": len(specs),
            "array_bytes": ref.nbytes,
            "curve": points,
        }

    return run


_SMOKE_CURVE = (
    ("serial", 1),
    ("parallel", 1),
    ("parallel", 2),
    ("shared-memory", 1),
    ("shared-memory", 2),
)

_LARGE_CURVE = (
    ("serial", 1),
    ("parallel", 1),
    ("parallel", 2),
    ("parallel", 4),
    ("shared-memory", 1),
    ("shared-memory", 2),
    ("shared-memory", 4),
)


@register_benchmark(
    "pipeline.dataplane.smoke",
    group="pipeline",
    tags=("smoke", "dataplane"),
    params={"n_records": 50_000, "n_shards": 4, "workers": 2},
)
def _dataplane_smoke():
    return _dataplane_setup(n_records=50_000, n_shards=4, workers=2)


@register_benchmark(
    "pipeline.dataplane.large",
    group="pipeline",
    tags=("large", "dataplane"),
    params={"n_records": 10_000_000, "n_shards": 8, "workers": 4},
    repeat=1,
)
def _dataplane_large():
    return _dataplane_setup(n_records=10_000_000, n_shards=8, workers=4)


@register_benchmark(
    "pipeline.dataplane.scaling.smoke",
    group="pipeline",
    tags=("smoke", "dataplane", "scaling"),
    params={
        "n_records": 50_000,
        "n_shards": 4,
        "curve": [list(point) for point in _SMOKE_CURVE],
    },
    repeat=1,
    record_extra=True,
)
def _dataplane_scaling_smoke():
    return _scaling_setup(
        n_records=50_000, n_shards=4, curve=_SMOKE_CURVE
    )


@register_benchmark(
    "pipeline.dataplane.scaling.large",
    group="pipeline",
    tags=("large", "dataplane", "scaling"),
    params={
        "n_records": 10_000_000,
        "n_shards": 8,
        "curve": [list(point) for point in _LARGE_CURVE],
    },
    repeat=1,
    record_extra=True,
)
def _dataplane_scaling_large():
    return _scaling_setup(
        n_records=10_000_000, n_shards=8, curve=_LARGE_CURVE
    )
