"""Benchmark registry: named, taggable timing cases.

A benchmark is registered as a *setup factory*: calling it builds the
workload (data generation, object construction — everything that should
not be timed) and returns the zero-argument callable the runner times.
Registration is declarative so the CLI can list, filter, and run cases
without importing anything beyond :mod:`repro.bench`.

Naming convention
-----------------
``<group>.<path>.<variant>`` — e.g. ``hotpath.em_recon.large`` or
``pipeline.figure1.smoke``.  The ``smoke`` variants finish in well under
a second each and are what CI runs (``repro bench --filter smoke``);
``large`` variants exercise the paper-scale regime (``n_records >=
10^5``) the PR-3 acceptance criteria are measured at.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.exceptions import ValidationError

__all__ = ["BenchmarkCase", "register_benchmark", "iter_benchmarks", "all_benchmarks"]

#: Registry of benchmark cases keyed by full name, in registration order.
_REGISTRY: dict[str, "BenchmarkCase"] = {}


@dataclass(frozen=True)
class BenchmarkCase:
    """A registered benchmark.

    Attributes
    ----------
    name:
        Full dotted name, e.g. ``"hotpath.em_recon.smoke"``.
    group:
        Coarse family — ``"hotpath"`` for micro-benchmarks of a single
        routine, ``"pipeline"`` for full experiments through the engine.
    setup:
        Zero-argument factory returning the callable to time.  Invoked
        once per benchmark run, outside the timed region.
    tags:
        Free-form labels used by ``--filter`` (e.g. ``"smoke"``,
        ``"large"``, ``"vectorized-pr3"``).
    params:
        Workload parameters recorded verbatim in the JSON payload so a
        timing is never divorced from the size it was measured at.
    repeat:
        Per-case override of the runner's repeat count; ``None`` defers
        to the runner.  Long ``large`` cases set this to keep the full
        suite's wall-clock sane.
    record_extra:
        When ``True`` the workload's return value from the final timed
        run — a JSON-safe dict — is stored as the payload entry's
        ``extra`` field.  Scaling benchmarks use it to ship structured
        measurements (per-backend curves, peak RSS) alongside the
        headline timing.
    """

    name: str
    group: str
    setup: Callable[[], Callable[[], object]]
    tags: tuple[str, ...] = ()
    params: dict = field(default_factory=dict)
    repeat: int | None = None
    record_extra: bool = False

    def matches(self, token: str) -> bool:
        """True when ``token`` is a substring of the name or an exact tag."""
        return token in self.name or token in self.tags


def register_benchmark(
    name: str,
    *,
    group: str,
    tags: Iterable[str] = (),
    params: dict | None = None,
    repeat: int | None = None,
    record_extra: bool = False,
):
    """Decorator registering ``setup`` as a benchmark case.

    Parameters
    ----------
    name:
        Unique dotted name for the case.
    group:
        ``"hotpath"`` or ``"pipeline"`` (free-form, but those are the
        two the built-in suite uses).
    tags:
        Filter labels; every case should carry ``"smoke"`` or
        ``"large"`` so CI and acceptance runs can select by cost.
    params:
        Workload-size metadata stored with every timing.
    repeat:
        Optional per-case repeat override (see :class:`BenchmarkCase`).
    record_extra:
        Record the final run's dict return value as the entry's
        ``extra`` field (see :class:`BenchmarkCase`).
    """
    tag_tuple = tuple(tags)

    def decorate(setup: Callable[[], Callable[[], object]]):
        if name in _REGISTRY:
            raise ValidationError(f"benchmark {name!r} is already registered")
        _REGISTRY[name] = BenchmarkCase(
            name=name,
            group=group,
            setup=setup,
            tags=tag_tuple,
            params=dict(params or {}),
            repeat=repeat,
            record_extra=record_extra,
        )
        return setup

    return decorate


def all_benchmarks() -> list[BenchmarkCase]:
    """Every registered case, in registration order."""
    return list(_REGISTRY.values())


def iter_benchmarks(filter_token: str | None = None) -> list[BenchmarkCase]:
    """Cases whose name or tags match ``filter_token`` (all when None)."""
    cases = all_benchmarks()
    if filter_token is None:
        return cases
    return [case for case in cases if case.matches(filter_token)]
