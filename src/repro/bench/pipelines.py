"""Full-pipeline benchmarks: figures and theorem through the engine.

These time exactly what ``repro figure1`` etc. execute — spec
compilation, engine dispatch (serial, cache disabled so every run does
the work), task execution, and aggregation — so the perf trajectory
covers the end-to-end path users hit, not just the numerical kernels.

``smoke`` variants shrink ``n_records`` so CI stays fast; ``full``
variants run the paper-scale defaults and are for local acceptance runs.
"""

from __future__ import annotations

from repro.bench.registry import register_benchmark

__all__ = []  # everything here registers via side effect


def _pipeline_setup(name: str, config=None):
    from repro.api.builtin import builtin_spec
    from repro.api.runner import run_spec
    from repro.engine import Engine, SerialExecutor

    if config is not None:
        spec = builtin_spec(name, config)
    else:
        spec = builtin_spec(name)

    def run():
        engine = Engine(executor=SerialExecutor(), cache=None)
        return run_spec(spec, engine=engine)

    return run


def _smoke_config():
    from repro.api.config import SweepConfig

    return SweepConfig(n_records=200, n_trials=1, seed=2005)


@register_benchmark(
    "pipeline.figure1.smoke",
    group="pipeline",
    tags=("smoke",),
    params={"n_records": 200, "n_trials": 1},
)
def _figure1_smoke():
    return _pipeline_setup("figure1", _smoke_config())


@register_benchmark(
    "pipeline.figure2.smoke",
    group="pipeline",
    tags=("smoke",),
    params={"n_records": 200, "n_trials": 1},
)
def _figure2_smoke():
    return _pipeline_setup("figure2", _smoke_config())


@register_benchmark(
    "pipeline.figure3.smoke",
    group="pipeline",
    tags=("smoke",),
    params={"n_records": 200, "n_trials": 1},
)
def _figure3_smoke():
    return _pipeline_setup("figure3", _smoke_config())


@register_benchmark(
    "pipeline.figure4.smoke",
    group="pipeline",
    tags=("smoke",),
    params={"n_records": 200, "n_trials": 1},
)
def _figure4_smoke():
    return _pipeline_setup("figure4", _smoke_config())


@register_benchmark(
    "pipeline.theorem52.smoke",
    group="pipeline",
    tags=("smoke",),
    params={"n_records": 1_000},
)
def _theorem52_smoke():
    from repro.api.builtin import theorem52_spec
    from repro.api.runner import run_spec
    from repro.engine import Engine, SerialExecutor

    spec = theorem52_spec(n_records=1_000)

    def run():
        engine = Engine(executor=SerialExecutor(), cache=None)
        return run_spec(spec, engine=engine)

    return run


@register_benchmark(
    "pipeline.figure1.full",
    group="pipeline",
    tags=("full",),
    params={"n_records": "default", "n_trials": 1},
    repeat=1,
)
def _figure1_full():
    return _pipeline_setup("figure1")


@register_benchmark(
    "pipeline.figure4.full",
    group="pipeline",
    tags=("full",),
    params={"n_records": "default", "n_trials": 1},
    repeat=1,
)
def _figure4_full():
    return _pipeline_setup("figure4")
