"""Micro-benchmarks for the numerical hot paths.

Each routine the PR-3 vectorization pass touched (and the BLAS-bound
paths kept for trajectory) is timed at two scales:

``smoke``
    Small inputs, sub-second each — the variant CI runs on every push.
``large``
    Paper-scale inputs with ``n_records >= 10^5`` — the regime the
    acceptance criteria ("at least two hot paths >= 2x faster") are
    measured in.

Setup (data generation, attack construction) happens outside the timed
callable, so timings isolate the routine itself.  All inputs derive
from fixed seeds: a timing difference between two runs is load or code,
never workload.
"""

from __future__ import annotations

import numpy as np

from repro.bench.registry import register_benchmark

__all__ = []  # everything here registers via side effect


def _mixture_sample(n: int, seed: int) -> np.ndarray:
    """Bimodal sample: the classic deconvolution stress workload."""
    rng = np.random.default_rng(seed)
    n_lo = int(0.6 * n)
    return np.concatenate(
        [rng.normal(-2.0, 0.6, n_lo), rng.normal(3.0, 1.0, n - n_lo)]
    )


def _correlated_table(n: int, m: int, n_principal: int, seed: int):
    """Correlated (n, m) table + its i.i.d.-noise disguised version."""
    from repro.data.spectra import two_level_spectrum
    from repro.randomization.base import NoiseModel

    rng = np.random.default_rng(seed)
    spectrum = np.asarray(
        two_level_spectrum(
            m, n_principal, total_variance=100.0 * m, non_principal_value=4.0
        )
    )
    basis, _ = np.linalg.qr(rng.standard_normal((m, m)))
    latent = rng.standard_normal((n, m)) * np.sqrt(spectrum)
    original = latent @ basis.T
    noise_std = 5.0
    disguised = original + rng.normal(0.0, noise_std, original.shape)
    model = NoiseModel(
        covariance=noise_std**2 * np.eye(m), mean=np.zeros(m)
    )
    return original, disguised, model


# ----------------------------------------------------------------------
# Agrawal-Srikant EM distribution reconstruction (Figure-1 prior source)
# ----------------------------------------------------------------------
def _em_recon_setup(n: int, n_bins: int, seed: int):
    from repro.randomization.distribution_recon import reconstruct_distribution
    from repro.stats.density import GaussianDensity

    noise = GaussianDensity(0.0, 1.5)
    rng = np.random.default_rng(seed)
    disguised = _mixture_sample(n, seed) + rng.normal(0.0, 1.5, n)

    def run():
        return reconstruct_distribution(disguised, noise, n_bins=n_bins)

    return run


@register_benchmark(
    "hotpath.em_recon.smoke",
    group="hotpath",
    tags=("smoke",),
    params={"n_records": 2_000, "n_bins": 32},
)
def _em_recon_smoke():
    return _em_recon_setup(2_000, 32, seed=101)


@register_benchmark(
    "hotpath.em_recon.large",
    group="hotpath",
    tags=("large",),
    params={"n_records": 100_000, "n_bins": 64},
    repeat=3,
)
def _em_recon_large():
    return _em_recon_setup(100_000, 64, seed=101)


# ----------------------------------------------------------------------
# UDR with the reconstructed (non-parametric) prior
# ----------------------------------------------------------------------
def _udr_setup(n: int, n_bins: int, seed: int):
    from repro.randomization.base import NoiseModel
    from repro.reconstruction.udr import UnivariateReconstructor

    rng = np.random.default_rng(seed)
    disguised = (_mixture_sample(n, seed) + rng.normal(0.0, 1.5, n)).reshape(
        n, 1
    )
    model = NoiseModel(covariance=2.25 * np.eye(1), mean=np.zeros(1))
    attack = UnivariateReconstructor(prior="reconstructed", n_bins=n_bins)

    def run():
        return attack.reconstruct(disguised, model)

    return run


@register_benchmark(
    "hotpath.udr_reconstructed.smoke",
    group="hotpath",
    tags=("smoke",),
    params={"n_records": 1_000, "n_bins": 32},
)
def _udr_smoke():
    return _udr_setup(1_000, 32, seed=202)


@register_benchmark(
    "hotpath.udr_reconstructed.large",
    group="hotpath",
    tags=("large",),
    params={"n_records": 100_000, "n_bins": 64},
    repeat=3,
)
def _udr_large():
    return _udr_setup(100_000, 64, seed=202)


# ----------------------------------------------------------------------
# MAP gradient ascent under a mixture prior (Section 6 numerical path)
# ----------------------------------------------------------------------
def _map_gd_setup(n: int, max_iter: int, seed: int):
    from repro.randomization.base import NoiseModel
    from repro.reconstruction.map_gd import MAPGradientReconstructor
    from repro.stats.density import GaussianMixtureDensity

    rng = np.random.default_rng(seed)
    disguised = (_mixture_sample(n, seed) + rng.normal(0.0, 1.5, n)).reshape(
        n, 1
    )
    prior = GaussianMixtureDensity(
        weights=[0.6, 0.4], means=[-2.0, 3.0], stds=[0.6, 1.0]
    )
    model = NoiseModel(covariance=2.25 * np.eye(1), mean=np.zeros(1))
    attack = MAPGradientReconstructor([prior], n_starts=4, max_iter=max_iter)

    def run():
        return attack.reconstruct(disguised, model)

    return run


@register_benchmark(
    "hotpath.map_gd.smoke",
    group="hotpath",
    tags=("smoke",),
    params={"n_records": 1_000, "max_iter": 40},
)
def _map_gd_smoke():
    return _map_gd_setup(1_000, 40, seed=303)


@register_benchmark(
    "hotpath.map_gd.large",
    group="hotpath",
    tags=("large",),
    params={"n_records": 100_000, "max_iter": 60},
    repeat=3,
)
def _map_gd_large():
    return _map_gd_setup(100_000, 60, seed=303)


# ----------------------------------------------------------------------
# Gaussian KDE evaluation (UDR's f_Y estimate, Section 4.2)
# ----------------------------------------------------------------------
def _kde_setup(n_samples: int, n_eval: int, seed: int):
    from repro.stats.kde import GaussianKDE

    rng = np.random.default_rng(seed)
    kde = GaussianKDE(rng.normal(1.0, 2.0, n_samples))
    grid = np.linspace(-9.0, 11.0, n_eval)

    def run():
        return kde.pdf(grid)

    return run


@register_benchmark(
    "hotpath.kde_pdf.smoke",
    group="hotpath",
    tags=("smoke",),
    params={"n_samples": 2_000, "n_eval": 500},
)
def _kde_smoke():
    return _kde_setup(2_000, 500, seed=404)


@register_benchmark(
    "hotpath.kde_pdf.large",
    group="hotpath",
    tags=("large",),
    params={"n_samples": 100_000, "n_eval": 10_000},
    repeat=3,
)
def _kde_large():
    return _kde_setup(100_000, 10_000, seed=404)


# ----------------------------------------------------------------------
# Wiener smoother over a long series (Section 3's serial-dependency factor)
# ----------------------------------------------------------------------
def _wiener_setup(n: int, m: int, window: int, seed: int):
    from repro.randomization.base import NoiseModel
    from repro.reconstruction.wiener import WienerSmootherReconstructor

    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=np.float64)
    signal = np.column_stack(
        [10.0 * np.sin(2.0 * np.pi * t / (300.0 + 50.0 * j)) for j in range(m)]
    )
    disguised = signal + rng.normal(0.0, 2.0, signal.shape)
    model = NoiseModel(covariance=4.0 * np.eye(m), mean=np.zeros(m))
    attack = WienerSmootherReconstructor(window=window)

    def run():
        return attack.reconstruct(disguised, model)

    return run


@register_benchmark(
    "hotpath.wiener.smoke",
    group="hotpath",
    tags=("smoke",),
    params={"n_records": 2_000, "m": 2, "window": 21},
)
def _wiener_smoke():
    return _wiener_setup(2_000, 2, 21, seed=505)


@register_benchmark(
    "hotpath.wiener.large",
    group="hotpath",
    tags=("large",),
    params={"n_records": 200_000, "m": 3, "window": 31},
    repeat=3,
)
def _wiener_large():
    return _wiener_setup(200_000, 3, 31, seed=505)


# ----------------------------------------------------------------------
# Spectral filtering + PCA-DR (Section 5 / Section 7.1 eigen paths)
# ----------------------------------------------------------------------
def _sf_setup(n: int, m: int, seed: int):
    from repro.reconstruction.spectral_filtering import (
        SpectralFilteringReconstructor,
    )

    _, disguised, model = _correlated_table(n, m, max(m // 10, 2), seed)
    attack = SpectralFilteringReconstructor()

    def run():
        return attack.reconstruct(disguised, model)

    return run


@register_benchmark(
    "hotpath.spectral_filtering.smoke",
    group="hotpath",
    tags=("smoke",),
    params={"n_records": 2_000, "m": 20},
)
def _sf_smoke():
    return _sf_setup(2_000, 20, seed=606)


@register_benchmark(
    "hotpath.spectral_filtering.large",
    group="hotpath",
    tags=("large",),
    params={"n_records": 100_000, "m": 50},
    repeat=3,
)
def _sf_large():
    return _sf_setup(100_000, 50, seed=606)


def _pca_setup(n: int, m: int, seed: int):
    from repro.reconstruction.pca_dr import PCAReconstructor

    _, disguised, model = _correlated_table(n, m, max(m // 10, 2), seed)
    attack = PCAReconstructor()

    def run():
        return attack.reconstruct(disguised, model)

    return run


@register_benchmark(
    "hotpath.pca_dr.smoke",
    group="hotpath",
    tags=("smoke",),
    params={"n_records": 2_000, "m": 20},
)
def _pca_smoke():
    return _pca_setup(2_000, 20, seed=707)


@register_benchmark(
    "hotpath.pca_dr.large",
    group="hotpath",
    tags=("large",),
    params={"n_records": 100_000, "m": 50},
    repeat=3,
)
def _pca_large():
    return _pca_setup(100_000, 50, seed=707)


# ----------------------------------------------------------------------
# Ledoit-Wolf shrinkage covariance (ablation A3's estimator option)
# ----------------------------------------------------------------------
def _lw_setup(n: int, m: int, seed: int):
    from repro.linalg.covariance import ledoit_wolf_covariance

    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n, m)) * np.linspace(3.0, 0.5, m)

    def run():
        return ledoit_wolf_covariance(data)

    return run


@register_benchmark(
    "hotpath.ledoit_wolf.smoke",
    group="hotpath",
    tags=("smoke",),
    params={"n_records": 1_000, "m": 20},
)
def _lw_smoke():
    return _lw_setup(1_000, 20, seed=808)


@register_benchmark(
    "hotpath.ledoit_wolf.large",
    group="hotpath",
    tags=("large",),
    params={"n_records": 100_000, "m": 40},
    repeat=3,
)
def _lw_large():
    return _lw_setup(100_000, 40, seed=808)


# ----------------------------------------------------------------------
# Univariate Gaussian-mixture EM (non-Gaussian-prior fitting, Section 6)
# ----------------------------------------------------------------------
def _em_fit_setup(n: int, k: int, seed: int):
    from repro.stats.em import UnivariateGaussianMixtureEM

    samples = _mixture_sample(n, seed)
    em = UnivariateGaussianMixtureEM(k, max_iter=500)

    def run():
        return em.fit(samples, rng=np.random.default_rng(7))

    return run


@register_benchmark(
    "hotpath.em_mixture.smoke",
    group="hotpath",
    tags=("smoke",),
    params={"n_records": 2_000, "k": 2},
)
def _em_fit_smoke():
    return _em_fit_setup(2_000, 2, seed=909)


@register_benchmark(
    "hotpath.em_mixture.large",
    group="hotpath",
    tags=("large",),
    params={"n_records": 100_000, "k": 3},
    repeat=3,
)
def _em_fit_large():
    return _em_fit_setup(100_000, 3, seed=909)


# ----------------------------------------------------------------------
# Discrete breach metrics (Evfimievski-style channel analysis)
# ----------------------------------------------------------------------
def _breach_setup(n_outputs: int, n_inputs: int, seed: int):
    from repro.metrics.breach import amplification_factor, worst_case_posterior

    rng = np.random.default_rng(seed)
    raw = rng.random((n_outputs, n_inputs)) + 0.05
    channel = raw / raw.sum(axis=0, keepdims=True)
    prior = np.full(n_inputs, 1.0 / n_inputs)
    prop = np.arange(0, n_inputs, 7)

    def run():
        worst = worst_case_posterior(prior, channel, prop)
        gamma = amplification_factor(channel)
        return worst, gamma

    return run


@register_benchmark(
    "hotpath.breach_metrics.smoke",
    group="hotpath",
    tags=("smoke",),
    params={"n_outputs": 64, "n_inputs": 128},
)
def _breach_smoke():
    return _breach_setup(64, 128, seed=111)


@register_benchmark(
    "hotpath.breach_metrics.large",
    group="hotpath",
    tags=("large",),
    params={"n_outputs": 4_096, "n_inputs": 2_048},
    repeat=3,
)
def _breach_large():
    return _breach_setup(4_096, 2_048, seed=111)
