"""Micro-benchmarks pinning the telemetry hooks' overhead budget.

The hot kernels (EM, KDE, MAP-GD) stay permanently instrumented, so the
cost of a *disabled* span hook — one ``trace.enabled()`` predicate and
a shared no-op singleton — must be invisible next to the numerics it
wraps.  Two cases make that budget measurable:

``telemetry.em_disabled.smoke`` / ``telemetry.em_enabled.smoke``
    The same EM fit with tracing off and tracing into a live
    :class:`~repro.telemetry.recorder.Recorder`.  The disabled case is
    byte-for-byte the production path; the ISSUE's <2% ceiling is
    asserted by ``tests/unit/test_telemetry.py`` against the raw hook
    cost, and these cases keep the end-to-end numbers on the record.

``telemetry.span_overhead.smoke``
    10k disabled span entries back to back — the per-call hook cost in
    isolation, for eyeballing how many calls fit inside 2% of any
    kernel's runtime.

``telemetry.convergence.smoke`` / ``telemetry.tracker_overhead.smoke``
    The EM fit with the per-iteration convergence tracker live, and 10k
    disabled tracker hooks in isolation — the convergence layer's
    enabled cost end-to-end and its disabled per-iteration cost.

``telemetry.em_runhealth.smoke``
    The same EM fit under the full run-health harness (recorder +
    metrics exporter + resource sampler), bounding the run-health
    layer's end-to-end overhead against the disabled case.
"""

from __future__ import annotations

import numpy as np

from repro.bench.registry import register_benchmark

__all__ = []  # everything here registers via side effect


def _em_workload():
    from repro.stats.em import UnivariateGaussianMixtureEM

    rng = np.random.default_rng(1105)
    samples = np.concatenate(
        [rng.normal(-2.0, 0.6, 1200), rng.normal(3.0, 1.0, 800)]
    )
    em = UnivariateGaussianMixtureEM(2, max_iter=200)

    def run():
        return em.fit(samples, rng=np.random.default_rng(7))

    return run


@register_benchmark(
    "telemetry.em_disabled.smoke",
    group="telemetry",
    tags=("smoke", "telemetry"),
    params={"n_samples": 2000, "n_components": 2},
)
def bench_em_disabled():
    """EM fit with tracing off — the production fast path.

    ``trace.disabled()`` pins the off state so the case measures the
    same code path whether or not the bench itself runs under
    ``--trace``.
    """
    from repro.telemetry import trace

    workload = _em_workload()

    def run():
        with trace.disabled():
            return workload()

    return run


@register_benchmark(
    "telemetry.em_enabled.smoke",
    group="telemetry",
    tags=("smoke", "telemetry"),
    params={"n_samples": 2000, "n_components": 2},
)
def bench_em_enabled():
    """The same EM fit recorded into a live recorder."""
    from repro.telemetry import Recorder, trace

    workload = _em_workload()

    def run():
        with trace.recording(Recorder()):
            return workload()

    return run


@register_benchmark(
    "telemetry.em_runhealth.smoke",
    group="telemetry",
    tags=("smoke", "telemetry"),
    params={"n_samples": 2000, "n_components": 2},
)
def bench_em_runhealth():
    """The same EM fit under the full run-health harness.

    Recording plus a live metrics exporter (writing to a temp ring
    file) plus the resource sampler — the everything-on configuration
    ``repro run --trace --metrics`` uses.  Comparing this case against
    ``telemetry.em_disabled.smoke`` bounds the run-health layer's
    end-to-end overhead; the <2% budget itself is asserted per-tick by
    ``tests/unit/test_runhealth.py``.
    """
    import pathlib
    import tempfile

    from repro.telemetry import Recorder, run_health, trace

    workload = _em_workload()
    tmp = pathlib.Path(tempfile.mkdtemp(prefix="repro-bench-"))

    def run():
        recorder = Recorder()
        with trace.recording(recorder):
            with run_health(
                recorder,
                metrics_path=tmp / "metrics.json",
                interval=0.2,
                sampler_interval=0.1,
            ):
                return workload()

    return run


@register_benchmark(
    "telemetry.convergence.smoke",
    group="telemetry",
    tags=("smoke", "telemetry"),
    params={"n_samples": 2000, "n_components": 2},
)
def bench_convergence():
    """The EM fit with tracing on vs. the convergence layer's budget.

    Same workload as ``telemetry.em_enabled.smoke`` but the recording
    path now also runs the :class:`~repro.telemetry.convergence.
    IterationTracker` every iteration (objective + delta record,
    heartbeat gauges, payload attachment).  Comparing against
    ``telemetry.em_disabled.smoke`` bounds the *combined* span +
    tracker overhead; the <2% ceiling on the disabled path is asserted
    by ``tests/unit/test_telemetry.py``.
    """
    from repro.telemetry import Recorder, trace

    workload = _em_workload()

    def run():
        recorder = Recorder()
        with trace.recording(recorder):
            result = workload()
        return result

    return run


@register_benchmark(
    "telemetry.tracker_overhead.smoke",
    group="telemetry",
    tags=("smoke", "telemetry"),
    params={"calls": 10_000},
)
def bench_tracker_overhead():
    """10k disabled tracker hooks: the per-iteration cost in isolation.

    The null tracker's ``enabled`` probe plus a ``record()`` call is
    what every instrumented kernel iteration pays with tracing off;
    this case keeps that number on the record next to
    ``telemetry.span_overhead.smoke``.
    """
    from repro.telemetry import trace

    def run():
        with trace.disabled():
            tracker = trace.iterations("noop")
            for _ in range(10_000):
                if tracker.enabled:
                    tracker.record(objective=1.0, delta=0.1)

    return run


@register_benchmark(
    "telemetry.span_overhead.smoke",
    group="telemetry",
    tags=("smoke", "telemetry"),
    params={"calls": 10_000},
)
def bench_span_overhead():
    """10k disabled span hooks: the per-call cost in isolation.

    Tracing is force-suppressed inside the workload so the case still
    measures the no-op path (and doesn't flood the trace document)
    when the bench itself runs under ``--trace``.
    """
    from repro.telemetry import trace

    def run():
        with trace.disabled():
            for _ in range(10_000):
                with trace.span("noop"):
                    pass

    return run
