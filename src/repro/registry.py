"""String-keyed component registries backing the declarative API.

Every building block of an experiment — randomization scheme,
reconstruction attack, dataset generator — registers itself under a
short string key with :func:`register_scheme`, :func:`register_attack`,
or :func:`register_dataset`.  A registered class provides two methods:

``to_spec(self) -> dict``
    A plain JSON-safe dict describing the instance, always carrying the
    registry key under ``"kind"``.

``from_spec(cls, spec: dict) -> instance``
    The inverse constructor.  ``Registry.create(spec)`` dispatches on
    ``spec["kind"]`` and calls it.

This is what makes experiments *data*: an
:class:`~repro.api.spec.ExperimentSpec` references components purely by
these dicts, so any scheme x attack x dataset combination can be written
as JSON, shipped to worker processes, cached, and rerun bit-identically
without touching library code.

Registration happens at class-definition time in the component modules;
:meth:`Registry._ensure_loaded` imports those modules on first use so a
bare ``import repro.registry`` still sees the full catalog.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Iterable

from repro.exceptions import ValidationError

__all__ = [
    "Registry",
    "SCHEMES",
    "ATTACKS",
    "DATASETS",
    "register_scheme",
    "register_attack",
    "register_dataset",
    "check_spec",
    "component_to_spec",
]


def check_spec(
    spec: Any,
    kind: str,
    *,
    required: Iterable[str] = (),
    optional: Iterable[str] = (),
) -> dict[str, Any]:
    """Validate a component spec dict eagerly and return it.

    Checks that ``spec`` is a dict whose ``"kind"`` matches, that every
    required field is present, and that no unknown fields sneak in (a
    typoed parameter should fail at spec construction, not silently
    fall back to a default inside a 10k-job sweep).
    """
    if not isinstance(spec, dict):
        raise ValidationError(
            f"component spec must be a dict, got {type(spec).__name__}"
        )
    if spec.get("kind") != kind:
        raise ValidationError(
            f"spec kind {spec.get('kind')!r} does not match {kind!r}"
        )
    allowed = {"kind", *required, *optional}
    unknown = sorted(set(spec) - allowed)
    if unknown:
        raise ValidationError(
            f"unknown field(s) {unknown} in {kind!r} spec; allowed: "
            f"{sorted(allowed)}"
        )
    missing = sorted(set(required) - set(spec))
    if missing:
        raise ValidationError(
            f"{kind!r} spec is missing required field(s) {missing}"
        )
    return spec


class Registry:
    """A name-to-class catalog with spec-based construction.

    Parameters
    ----------
    label:
        Human-readable component family name (for error messages).
    modules:
        Modules imported lazily before the first lookup, so the classes
        they define (and register) are guaranteed to be present.
    """

    def __init__(self, label: str, modules: tuple[str, ...] = ()) -> None:
        self.label = label
        self._modules = modules
        self._entries: dict[str, type[Any]] = {}
        self._loaded = False

    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        for module in self._modules:
            importlib.import_module(module)
        # Only after every import succeeded — a failed import must
        # surface again on the next call, not leave a partial catalog.
        self._loaded = True

    def register(self, key: str) -> Callable[[type[Any]], type[Any]]:
        """Class decorator adding the class under ``key``."""
        if not isinstance(key, str) or not key:
            raise ValidationError(f"registry key must be a non-empty string, got {key!r}")

        def decorate(cls: type[Any]) -> type[Any]:
            existing = self._entries.get(key)
            if existing is not None and existing is not cls:
                raise ValidationError(
                    f"{self.label} key {key!r} already registered to "
                    f"{existing.__name__}"
                )
            for method in ("from_spec", "to_spec"):
                if not callable(getattr(cls, method, None)):
                    raise ValidationError(
                        f"{cls.__name__} must define {method}() to be "
                        f"registered as a {self.label}"
                    )
            self._entries[key] = cls
            cls.spec_kind = key
            return cls

        return decorate

    def names(self) -> list[str]:
        """All registered keys, sorted."""
        self._ensure_loaded()
        return sorted(self._entries)

    def get(self, key: str) -> type[Any]:
        """The class registered under ``key``."""
        self._ensure_loaded()
        try:
            return self._entries[key]
        except KeyError:
            raise ValidationError(
                f"unknown {self.label} {key!r}; registered: {self.names()}"
            ) from None

    def __contains__(self, key: str) -> bool:
        self._ensure_loaded()
        return key in self._entries

    def create(self, spec: dict[str, Any]) -> Any:
        """Instantiate the component a spec dict describes."""
        if not isinstance(spec, dict):
            raise ValidationError(
                f"{self.label} spec must be a dict, got {type(spec).__name__}"
            )
        kind = spec.get("kind")
        if not isinstance(kind, str):
            raise ValidationError(
                f"{self.label} spec needs a string 'kind' field, got "
                f"{kind!r}"
            )
        return self.get(kind).from_spec(spec)

    def validate(self, spec: dict[str, Any]) -> dict[str, Any]:
        """Build (and discard) the component, surfacing errors eagerly."""
        self.create(spec)
        return spec

    def __repr__(self) -> str:
        self._ensure_loaded()
        return f"Registry({self.label!r}, {self.names()})"


def component_to_spec(component: Any) -> dict[str, Any]:
    """A registered component instance's spec dict (convenience)."""
    to_spec = getattr(component, "to_spec", None)
    if not callable(to_spec):
        raise ValidationError(
            f"{type(component).__name__} does not support spec "
            "serialization (no to_spec method)"
        )
    return to_spec()


#: Randomization schemes (``Y = X + R`` mechanisms).
SCHEMES = Registry(
    "scheme",
    (
        "repro.randomization.additive",
        "repro.randomization.correlated",
    ),
)

#: Reconstruction attacks.
ATTACKS = Registry(
    "attack",
    (
        "repro.reconstruction.ndr",
        "repro.reconstruction.udr",
        "repro.reconstruction.spectral_filtering",
        "repro.reconstruction.pca_dr",
        "repro.reconstruction.bedr",
        "repro.reconstruction.wiener",
        "repro.reconstruction.kalman",
        "repro.reconstruction.partial_disclosure",
    ),
)

#: Dataset generators (objects with ``sample(n_records, rng=...)``).
DATASETS = Registry(
    "dataset",
    (
        "repro.data.synthetic",
        "repro.data.copula",
        "repro.data.census",
        "repro.data.timeseries",
    ),
)

register_scheme = SCHEMES.register
register_attack = ATTACKS.register
register_dataset = DATASETS.register
