"""repro — reproduction of "Deriving Private Information from Randomized Data".

Huang, Du, and Chen (SIGMOD 2005) showed that additive randomization
``Y = X + R`` leaks far more than its noise variance suggests whenever the
data's attributes are correlated, via two reconstruction attacks (PCA-DR
and BE-DR), and proposed correlated noise as the countermeasure.  This
package implements the complete system: data generation, randomization
schemes, all reconstruction attacks, privacy metrics, the defense, and
the experiment harness that regenerates every figure in the paper.

Quickstart
----------
>>> import repro
>>> dataset = repro.generate_dataset(
...     spectrum=repro.two_level_spectrum(20, 3, total_variance=2000.0),
...     n_records=1000, rng=0)
>>> scheme = repro.AdditiveNoiseScheme(std=5.0)
>>> disguised = scheme.disguise(dataset.values, rng=1)
>>> attack = repro.BayesEstimateReconstructor()
>>> result = attack.reconstruct(disguised)
>>> rmse = repro.root_mean_square_error(disguised.original, result)
>>> rmse < 5.0  # beats the nominal noise level
True
"""

from repro.core.defense import DesignedNoise, NoiseDesigner, design_noise_spectrum
from repro.core.pipeline import (
    AttackOutcome,
    AttackPipeline,
    PipelineReport,
    evaluate_attacks,
)
from repro.core.threat_model import ThreatModel
from repro.data.census import CensusLikeGenerator, CensusTable
from repro.data.copula import GaussianCopulaGenerator
from repro.data.covariance_builder import CovarianceModel
from repro.data.spectra import (
    decaying_spectrum,
    rescale_to_trace,
    two_level_spectrum,
)
from repro.data.synthetic import SyntheticDataset, generate_dataset
from repro.data.timeseries import VectorAutoregressiveGenerator
from repro.exceptions import (
    ConfigurationError,
    ConvergenceError,
    NotPositiveDefiniteError,
    ReproError,
    ShapeError,
    SpectrumError,
    ValidationError,
)
from repro.metrics.breach import (
    amplification_factor,
    amplification_prevents_breach,
    breach_occurs,
    posterior_distribution,
    worst_case_posterior,
)
from repro.metrics.dissimilarity import correlation_dissimilarity
from repro.metrics.error import (
    mean_square_error,
    per_attribute_rmse,
    root_mean_square_error,
)
from repro.metrics.privacy import (
    interval_privacy,
    mutual_information_privacy,
    privacy_gain,
)
from repro.randomization.additive import AdditiveNoiseScheme
from repro.randomization.base import (
    DisguisedDataset,
    NoiseModel,
    RandomizationScheme,
)
from repro.randomization.correlated import CorrelatedNoiseScheme
from repro.randomization.distribution_recon import reconstruct_distribution
from repro.randomization.randomized_response import WarnerRandomizedResponse
from repro.reconstruction.base import ReconstructionResult, Reconstructor
from repro.reconstruction.bedr import BayesEstimateReconstructor
from repro.reconstruction.kalman import KalmanSmootherReconstructor
from repro.reconstruction.map_gd import MAPGradientReconstructor
from repro.reconstruction.ndr import NoiseDistributionReconstructor
from repro.reconstruction.partial_disclosure import (
    ConditionalDisclosureReconstructor,
)
from repro.reconstruction.pca_dr import PCAReconstructor
from repro.reconstruction.selection import (
    ComponentSelector,
    EnergyFractionSelector,
    FixedCountSelector,
    LargestGapSelector,
)
from repro.reconstruction.spectral_filtering import (
    SpectralFilteringReconstructor,
    marchenko_pastur_bounds,
)
from repro.reconstruction.udr import UnivariateReconstructor
from repro.reconstruction.wiener import WienerSmootherReconstructor
from repro.stats.density import (
    Density,
    GaussianDensity,
    GaussianMixtureDensity,
    HistogramDensity,
    LaplaceDensity,
    UniformDensity,
)
from repro.mining.association import AprioriMiner, FrequentItemset, MaskScheme
from repro.mining.naive_bayes import GaussianNaiveBayes, utility_report
from repro.stats.kde import GaussianKDE
from repro.stats.mvn import MultivariateNormal

#: Package version; participates in engine cache keys so upgrading
#: invalidates previously cached results.
__version__ = "1.0.0"


def __getattr__(name):
    # Lazy: ``repro.api`` pulls in the engine, whose cache keys read
    # ``repro.__version__`` — importing it eagerly mid-__init__ would
    # expose a partially initialized module.
    if name == "api":
        import repro.api as api

        return api
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = [
    "__version__",
    # core
    "DesignedNoise",
    "NoiseDesigner",
    "design_noise_spectrum",
    "AttackOutcome",
    "AttackPipeline",
    "PipelineReport",
    "evaluate_attacks",
    "ThreatModel",
    # data
    "CensusLikeGenerator",
    "GaussianCopulaGenerator",
    "CensusTable",
    "CovarianceModel",
    "decaying_spectrum",
    "rescale_to_trace",
    "two_level_spectrum",
    "SyntheticDataset",
    "generate_dataset",
    "VectorAutoregressiveGenerator",
    # exceptions
    "ConfigurationError",
    "ConvergenceError",
    "NotPositiveDefiniteError",
    "ReproError",
    "ShapeError",
    "SpectrumError",
    "ValidationError",
    # metrics
    "amplification_factor",
    "amplification_prevents_breach",
    "breach_occurs",
    "posterior_distribution",
    "worst_case_posterior",
    "correlation_dissimilarity",
    "mean_square_error",
    "per_attribute_rmse",
    "root_mean_square_error",
    "interval_privacy",
    "mutual_information_privacy",
    "privacy_gain",
    # randomization
    "AdditiveNoiseScheme",
    "DisguisedDataset",
    "NoiseModel",
    "RandomizationScheme",
    "CorrelatedNoiseScheme",
    "reconstruct_distribution",
    "WarnerRandomizedResponse",
    # reconstruction
    "ReconstructionResult",
    "Reconstructor",
    "BayesEstimateReconstructor",
    "KalmanSmootherReconstructor",
    "MAPGradientReconstructor",
    "NoiseDistributionReconstructor",
    "ConditionalDisclosureReconstructor",
    "PCAReconstructor",
    "ComponentSelector",
    "EnergyFractionSelector",
    "FixedCountSelector",
    "LargestGapSelector",
    "SpectralFilteringReconstructor",
    "marchenko_pastur_bounds",
    "UnivariateReconstructor",
    "WienerSmootherReconstructor",
    # mining
    "AprioriMiner",
    "FrequentItemset",
    "MaskScheme",
    "GaussianNaiveBayes",
    "utility_report",
    # stats
    "Density",
    "GaussianDensity",
    "GaussianMixtureDensity",
    "HistogramDensity",
    "LaplaceDensity",
    "UniformDensity",
    "GaussianKDE",
    "MultivariateNormal",
]
