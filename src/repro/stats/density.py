"""Univariate density objects used by UDR and the distribution estimators.

A :class:`Density` exposes ``pdf``, ``mean``, ``variance``, ``sample`` and
a finite ``support`` interval used to set up the integration grids in
:mod:`repro.reconstruction.udr` and
:mod:`repro.randomization.distribution_recon`.  All implementations are
plain NumPy; no scipy.stats objects leak through the API.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_in_range, check_vector

__all__ = [
    "Density",
    "GaussianDensity",
    "UniformDensity",
    "LaplaceDensity",
    "GaussianMixtureDensity",
    "HistogramDensity",
]


class Density(abc.ABC):
    """A univariate probability density."""

    @abc.abstractmethod
    def pdf(self, x) -> np.ndarray:
        """Density evaluated elementwise at ``x``."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected value."""

    @property
    @abc.abstractmethod
    def variance(self) -> float:
        """Variance."""

    @abc.abstractmethod
    def support(self, coverage: float = 0.9999) -> tuple[float, float]:
        """Interval ``[lo, hi]`` containing at least ``coverage`` mass."""

    @abc.abstractmethod
    def sample(self, size: int, rng=None) -> np.ndarray:
        """Draw ``size`` i.i.d. samples."""

    @property
    def std(self) -> float:
        """Standard deviation (derived from :attr:`variance`)."""
        return math.sqrt(self.variance)

    def _as_array(self, x) -> np.ndarray:
        return np.asarray(x, dtype=np.float64)


class GaussianDensity(Density):
    """Normal density ``N(mu, sigma^2)``.

    This is the paper's default noise model (Section 6.1: "random noise
    used for each attribute has normal distribution").

    Parameters
    ----------
    mean:
        Location ``mu``.
    std:
        Standard deviation ``sigma > 0``.
    """

    def __init__(self, mean: float = 0.0, std: float = 1.0):
        self._mean = check_in_range(mean, "mean")
        self._std = check_in_range(std, "std", low=0.0, inclusive_low=False)

    def pdf(self, x) -> np.ndarray:
        """``N(x; mu, sigma^2)`` evaluated elementwise; shape follows ``x``."""
        z = (self._as_array(x) - self._mean) / self._std
        return np.exp(-0.5 * z * z) / (self._std * math.sqrt(2.0 * math.pi))

    @property
    def mean(self) -> float:
        """Location parameter ``mu``."""
        return self._mean

    @property
    def variance(self) -> float:
        """``sigma^2``."""
        return self._std**2

    def support(self, coverage: float = 0.9999) -> tuple[float, float]:
        """Central interval ``mu +- z(coverage) * sigma``."""
        halfwidth = self._std * _gaussian_halfwidth(coverage)
        return (self._mean - halfwidth, self._mean + halfwidth)

    def sample(self, size: int, rng=None) -> np.ndarray:
        """Draw ``size`` i.i.d. ``N(mu, sigma^2)`` variates, shape ``(size,)``."""
        return as_generator(rng).normal(self._mean, self._std, size=size)

    def __repr__(self) -> str:
        return f"GaussianDensity(mean={self._mean:g}, std={self._std:g})"


class UniformDensity(Density):
    """Uniform density on ``[low, high]``.

    Matches the paper's introductory example of disguising with
    "independent uniformly-random number with mean zero" (Section 1).

    Parameters
    ----------
    low, high:
        Interval endpoints with ``high > low``.
    """

    def __init__(self, low: float, high: float):
        low = check_in_range(low, "low")
        high = check_in_range(high, "high")
        if high <= low:
            raise ValidationError(
                f"'high' must exceed 'low', got [{low}, {high}]"
            )
        self._low = low
        self._high = high

    def pdf(self, x) -> np.ndarray:
        """``1 / (high - low)`` inside the interval, 0 outside."""
        array = self._as_array(x)
        inside = (array >= self._low) & (array <= self._high)
        return np.where(inside, 1.0 / (self._high - self._low), 0.0)

    @property
    def mean(self) -> float:
        """Interval midpoint ``(low + high) / 2``."""
        return (self._low + self._high) / 2.0

    @property
    def variance(self) -> float:
        """``(high - low)^2 / 12``."""
        return (self._high - self._low) ** 2 / 12.0

    def support(self, coverage: float = 0.9999) -> tuple[float, float]:
        """The full interval ``[low, high]`` (all mass, any coverage)."""
        check_in_range(coverage, "coverage", low=0.0, high=1.0,
                       inclusive_low=False)
        return (self._low, self._high)

    def sample(self, size: int, rng=None) -> np.ndarray:
        """Draw ``size`` i.i.d. uniform variates, shape ``(size,)``."""
        return as_generator(rng).uniform(self._low, self._high, size=size)

    def __repr__(self) -> str:
        return f"UniformDensity(low={self._low:g}, high={self._high:g})"


class LaplaceDensity(Density):
    """Laplace density with location ``mu`` and scale ``b``.

    Included as a heavier-tailed noise alternative; historically relevant
    because additive Laplace noise later became the differential-privacy
    mechanism of choice.

    Parameters
    ----------
    mean:
        Location ``mu``.
    scale:
        Scale ``b > 0`` (variance is ``2 b^2``).
    """

    def __init__(self, mean: float = 0.0, scale: float = 1.0):
        self._mean = check_in_range(mean, "mean")
        self._scale = check_in_range(
            scale, "scale", low=0.0, inclusive_low=False
        )

    def pdf(self, x) -> np.ndarray:
        """``exp(-|x - mu| / b) / (2 b)`` evaluated elementwise."""
        z = np.abs(self._as_array(x) - self._mean) / self._scale
        return np.exp(-z) / (2.0 * self._scale)

    @property
    def mean(self) -> float:
        """Location parameter ``mu``."""
        return self._mean

    @property
    def variance(self) -> float:
        """``2 b^2``."""
        return 2.0 * self._scale**2

    def support(self, coverage: float = 0.9999) -> tuple[float, float]:
        """Central interval ``mu -+ b * log(1 - coverage)``."""
        check_in_range(coverage, "coverage", low=0.0, high=1.0,
                       inclusive_low=False)
        halfwidth = -self._scale * math.log(1.0 - coverage)
        return (self._mean - halfwidth, self._mean + halfwidth)

    def sample(self, size: int, rng=None) -> np.ndarray:
        """Draw ``size`` i.i.d. Laplace variates, shape ``(size,)``."""
        return as_generator(rng).laplace(self._mean, self._scale, size=size)

    def __repr__(self) -> str:
        return f"LaplaceDensity(mean={self._mean:g}, scale={self._scale:g})"


class GaussianMixtureDensity(Density):
    """Finite mixture of Gaussians ``sum_k w_k N(mu_k, sigma_k^2)``.

    Serves as the non-Gaussian prior for the gradient-descent MAP
    extension (Section 6's closing remark about numerical methods for
    other distributions).

    Parameters
    ----------
    weights:
        Non-negative component weights, shape ``(k,)``; normalized
        internally to sum to one.
    means:
        Component means ``mu_k``, shape ``(k,)``.
    stds:
        Component standard deviations ``sigma_k > 0``, shape ``(k,)``.
    """

    def __init__(self, weights, means, stds):
        self._weights = check_vector(weights, "weights")
        self._means = check_vector(means, "means")
        self._stds = check_vector(stds, "stds")
        if not (
            self._weights.size == self._means.size == self._stds.size
        ):
            raise ValidationError(
                "weights, means, and stds must have the same length"
            )
        if np.any(self._weights < 0.0):
            raise ValidationError("mixture weights must be non-negative")
        total = float(self._weights.sum())
        if total <= 0.0:
            raise ValidationError("mixture weights must sum to a positive value")
        self._weights = self._weights / total
        if np.any(self._stds <= 0.0):
            raise ValidationError("mixture stds must be positive")

    @property
    def n_components(self) -> int:
        """Number of mixture components."""
        return int(self._weights.size)

    @property
    def weights(self) -> np.ndarray:
        """Normalized component weights."""
        return self._weights.copy()

    @property
    def means(self) -> np.ndarray:
        """Component means."""
        return self._means.copy()

    @property
    def stds(self) -> np.ndarray:
        """Component standard deviations."""
        return self._stds.copy()

    def pdf(self, x) -> np.ndarray:
        """Weighted sum of component normals; shape follows ``x``."""
        array = self._as_array(x)
        flat = np.atleast_1d(array).ravel()
        z = (flat[:, None] - self._means[None, :]) / self._stds[None, :]
        comp = np.exp(-0.5 * z * z) / (
            self._stds[None, :] * math.sqrt(2.0 * math.pi)
        )
        return (comp @ self._weights).reshape(array.shape)

    @property
    def mean(self) -> float:
        """Mixture mean ``sum_k w_k mu_k``."""
        return float(self._weights @ self._means)

    @property
    def variance(self) -> float:
        """``sum_k w_k (sigma_k^2 + mu_k^2) - mean^2``."""
        second_moment = float(
            self._weights @ (self._stds**2 + self._means**2)
        )
        return second_moment - self.mean**2

    def support(self, coverage: float = 0.9999) -> tuple[float, float]:
        """Union of the per-component central coverage intervals."""
        halfwidth = _gaussian_halfwidth(coverage)
        lows = self._means - halfwidth * self._stds
        highs = self._means + halfwidth * self._stds
        return (float(lows.min()), float(highs.max()))

    def sample(self, size: int, rng=None) -> np.ndarray:
        """Ancestral sampling: pick components by weight, then draw normals."""
        generator = as_generator(rng)
        component = generator.choice(
            self.n_components, size=size, p=self._weights
        )
        return generator.normal(
            self._means[component], self._stds[component]
        )

    def __repr__(self) -> str:
        return f"GaussianMixtureDensity(n_components={self.n_components})"


class HistogramDensity(Density):
    """Piecewise-constant density over fixed bins.

    This is the representation produced by the Agrawal-Srikant iterative
    distribution reconstruction (:mod:`repro.randomization.
    distribution_recon`): probabilities over a discretized support.

    Parameters
    ----------
    edges:
        Strictly increasing bin edges, shape ``(n_bins + 1,)``.
    probabilities:
        Non-negative per-bin probabilities, shape ``(n_bins,)``;
        normalized internally to sum to one.
    """

    def __init__(self, edges, probabilities):
        self._edges = check_vector(edges, "edges", min_length=2)
        if np.any(np.diff(self._edges) <= 0.0):
            raise ValidationError("'edges' must be strictly increasing")
        probs = check_vector(probabilities, "probabilities")
        if probs.size != self._edges.size - 1:
            raise ValidationError(
                f"expected {self._edges.size - 1} bin probabilities, "
                f"got {probs.size}"
            )
        if np.any(probs < 0.0):
            raise ValidationError("bin probabilities must be non-negative")
        total = float(probs.sum())
        if total <= 0.0:
            raise ValidationError("bin probabilities must sum to > 0")
        self._probs = probs / total
        self._widths = np.diff(self._edges)
        self._density = self._probs / self._widths
        self._centers = (self._edges[:-1] + self._edges[1:]) / 2.0

    @classmethod
    def from_samples(cls, samples, *, bins: int = 64) -> "HistogramDensity":
        """Fit a histogram density to raw samples."""
        data = check_vector(samples, "samples", min_length=2)
        counts, edges = np.histogram(data, bins=bins)
        total = counts.sum()
        if total == 0:
            raise ValidationError("'samples' produced an empty histogram")
        return cls(edges, counts / total)

    @property
    def edges(self) -> np.ndarray:
        """Bin edges, length ``n_bins + 1``."""
        return self._edges.copy()

    @property
    def centers(self) -> np.ndarray:
        """Bin midpoints, length ``n_bins``."""
        return self._centers.copy()

    @property
    def probabilities(self) -> np.ndarray:
        """Per-bin probabilities (sum to one)."""
        return self._probs.copy()

    def pdf(self, x) -> np.ndarray:
        """Bin density ``p_k / width_k`` at each point; 0 outside the bins."""
        array = self._as_array(x)
        index = np.searchsorted(self._edges, array, side="right") - 1
        # Points exactly on the last edge belong to the last bin.
        index = np.where(
            array == self._edges[-1], self._density.size - 1, index
        )
        inside = (index >= 0) & (index < self._density.size)
        safe = np.clip(index, 0, self._density.size - 1)
        return np.where(inside, self._density[safe], 0.0)

    @property
    def mean(self) -> float:
        """Probability-weighted bin-midpoint mean."""
        return float(self._probs @ self._centers)

    @property
    def variance(self) -> float:
        """Mixture-of-uniforms variance: between-bin plus within-bin terms."""
        between = float(self._probs @ (self._centers - self.mean) ** 2)
        within = float(self._probs @ (self._widths**2 / 12.0))
        return between + within

    def support(self, coverage: float = 0.9999) -> tuple[float, float]:
        """The full binned interval ``[edges[0], edges[-1]]``."""
        check_in_range(coverage, "coverage", low=0.0, high=1.0,
                       inclusive_low=False)
        return (float(self._edges[0]), float(self._edges[-1]))

    def sample(self, size: int, rng=None) -> np.ndarray:
        """Pick bins by probability, then draw uniformly within each bin."""
        generator = as_generator(rng)
        index = generator.choice(self._probs.size, size=size, p=self._probs)
        left = self._edges[index]
        return left + generator.random(size) * self._widths[index]

    def __repr__(self) -> str:
        return f"HistogramDensity(n_bins={self._probs.size})"


def _gaussian_halfwidth(coverage: float) -> float:
    """Two-sided standard-normal quantile for a coverage probability."""
    check_in_range(coverage, "coverage", low=0.0, high=1.0,
                   inclusive_low=False, inclusive_high=False)
    # Inverse error function via scipy would work; keep a local rational
    # approximation-free path using the bisection on erf, which is exact
    # enough for grid sizing.
    from scipy.special import erfinv

    return math.sqrt(2.0) * float(erfinv(coverage))
