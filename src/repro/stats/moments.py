"""Moment helpers shared by estimators and experiments."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_matrix, check_vector

__all__ = ["standardize", "weighted_mean_and_variance"]


def standardize(data, *, ddof: int = 1) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Center and scale each column of a data matrix.

    Returns ``(standardized, means, stds)`` so the transform can be
    inverted with ``standardized * stds + means``.

    Raises
    ------
    ValidationError
        If any column is constant (zero standard deviation).
    """
    matrix = check_matrix(data, "data", min_rows=2)
    means = matrix.mean(axis=0)
    stds = matrix.std(axis=0, ddof=ddof)
    if np.any(stds <= 0.0):
        constant = np.flatnonzero(stds <= 0.0)
        raise ValidationError(
            f"columns {constant.tolist()} are constant; cannot standardize"
        )
    return (matrix - means) / stds, means, stds


def weighted_mean_and_variance(values, weights) -> tuple[float, float]:
    """Mean and variance of a discrete distribution over ``values``.

    Used by UDR to turn a posterior over a grid into the posterior-mean
    guess and its spread.

    Parameters
    ----------
    values:
        Support points, shape ``(k,)``.
    weights:
        Non-negative weights, shape ``(k,)``; normalized internally.
    """
    points = check_vector(values, "values")
    raw = check_vector(weights, "weights")
    if points.size != raw.size:
        raise ValidationError(
            f"values (len {points.size}) and weights (len {raw.size}) differ"
        )
    if np.any(raw < 0.0):
        raise ValidationError("'weights' must be non-negative")
    total = float(raw.sum())
    if total <= 0.0:
        raise ValidationError("'weights' must sum to a positive value")
    probs = raw / total
    mean = float(probs @ points)
    variance = float(probs @ (points - mean) ** 2)
    return mean, variance
