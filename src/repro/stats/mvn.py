"""Multivariate normal model with sampling, conditionals, and marginals.

Section 6 assumes the original data are multivariate normal; the
closed-form BE-DR (Eq. 11) and its correlated-noise variant (Theorem 8.1)
follow from the Gaussian posterior.  The conditional distribution here
also powers the partial-value-disclosure attack (Section 3, third factor;
Section 9 future work).
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.psd import cholesky_with_jitter, psd_inverse
from repro.utils.rng import as_generator
from repro.utils.validation import check_matrix, check_symmetric, check_vector

__all__ = ["MultivariateNormal"]


class MultivariateNormal:
    """An ``m``-dimensional normal distribution ``N(mean, covariance)``.

    Parameters
    ----------
    mean:
        Mean vector, shape ``(m,)``.
    covariance:
        Symmetric PSD covariance, shape ``(m, m)``.  Slightly indefinite
        inputs (from Theorem-5.1 estimation) should be repaired with
        :func:`repro.linalg.psd.nearest_psd` before constructing the model.
    """

    def __init__(self, mean, covariance):
        self._mean = check_vector(mean, "mean")
        self._cov = check_symmetric(covariance, "covariance")
        if self._cov.shape[0] != self._mean.size:
            raise ValidationError(
                f"mean has length {self._mean.size} but covariance is "
                f"{self._cov.shape[0]}x{self._cov.shape[0]}"
            )
        self._chol: np.ndarray | None = None
        self._precision: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def fit(cls, data, *, ddof: int = 1) -> "MultivariateNormal":
        """Maximum-likelihood fit (sample mean / covariance) to data rows."""
        from repro.linalg.covariance import sample_covariance, sample_mean

        matrix = check_matrix(data, "data", min_rows=2)
        return cls(sample_mean(matrix), sample_covariance(matrix, ddof=ddof))

    @classmethod
    def standard(cls, dim: int) -> "MultivariateNormal":
        """Standard normal ``N(0, I_dim)``."""
        return cls(np.zeros(dim), np.eye(dim))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Dimension ``m``."""
        return int(self._mean.size)

    @property
    def mean(self) -> np.ndarray:
        """Mean vector (copy)."""
        return self._mean.copy()

    @property
    def covariance(self) -> np.ndarray:
        """Covariance matrix (copy)."""
        return self._cov.copy()

    @property
    def precision(self) -> np.ndarray:
        """Inverse covariance (computed lazily, spectrally stabilized)."""
        if self._precision is None:
            self._precision = psd_inverse(self._cov)
        return self._precision.copy()

    def _cholesky(self) -> np.ndarray:
        if self._chol is None:
            self._chol = cholesky_with_jitter(self._cov)
        return self._chol

    # ------------------------------------------------------------------
    # Densities
    # ------------------------------------------------------------------
    def logpdf(self, x) -> np.ndarray:
        """Log density at one point ``(m,)`` or a batch ``(n, m)``."""
        points = np.asarray(x, dtype=np.float64)
        single = points.ndim == 1
        if single:
            batch = points.reshape(1, -1)
        else:
            batch = check_matrix(points, "x")
        if batch.shape[1] != self.dim:
            raise ValidationError(
                f"points have dimension {batch.shape[1]}, expected {self.dim}"
            )
        chol = self._cholesky()
        centered = batch - self._mean
        from scipy.linalg import solve_triangular

        # Solve L z = (x - mu)^T for the Mahalanobis term.
        z = solve_triangular(chol, centered.T, lower=True).T
        mahalanobis = np.einsum("ij,ij->i", z, z)
        log_det = 2.0 * float(np.sum(np.log(np.diag(chol))))
        log_norm = -0.5 * (self.dim * math.log(2.0 * math.pi) + log_det)
        result = log_norm - 0.5 * mahalanobis
        return float(result[0]) if single else result

    def pdf(self, x) -> np.ndarray:
        """Density at one point or a batch of points."""
        return np.exp(self.logpdf(x))

    def mahalanobis(self, x) -> np.ndarray:
        """Squared Mahalanobis distance of point(s) from the mean."""
        points = np.asarray(x, dtype=np.float64)
        single = points.ndim == 1
        batch = points.reshape(1, -1) if single else check_matrix(points, "x")
        from scipy.linalg import solve_triangular

        z = solve_triangular(
            self._cholesky(), (batch - self._mean).T, lower=True
        ).T
        distances = np.einsum("ij,ij->i", z, z)
        return float(distances[0]) if single else distances

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, size: int, rng=None) -> np.ndarray:
        """Draw ``size`` rows from the distribution, shape ``(size, m)``.

        This is the library's replacement for Matlab's ``mvnrnd``
        (Section 7.1, step 4 of the paper's methodology).
        """
        if size < 1:
            raise ValidationError(f"size must be >= 1, got {size}")
        generator = as_generator(rng)
        standard = generator.standard_normal((size, self.dim))
        return self._mean + standard @ self._cholesky().T

    # ------------------------------------------------------------------
    # Marginals and conditionals
    # ------------------------------------------------------------------
    def marginal(self, indices) -> "MultivariateNormal":
        """Marginal distribution over a subset of coordinates."""
        idx = _check_indices(indices, self.dim)
        return MultivariateNormal(
            self._mean[idx], self._cov[np.ix_(idx, idx)]
        )

    def condition(self, indices, values) -> "MultivariateNormal":
        """Distribution of the remaining coordinates given observed ones.

        Implements the Gaussian conditioning formula:

            mu_{a|b}  = mu_a + S_ab S_bb^{-1} (x_b - mu_b)
            S_{a|b}   = S_aa - S_ab S_bb^{-1} S_ba

        Parameters
        ----------
        indices:
            Coordinates that are observed (the leaked attributes).
        values:
            Observed values, same length as ``indices``.

        Returns
        -------
        MultivariateNormal
            Conditional distribution over the complementary coordinates in
            their original order.
        """
        observed = _check_indices(indices, self.dim)
        obs_values = check_vector(values, "values")
        if obs_values.size != observed.size:
            raise ValidationError(
                f"got {obs_values.size} values for {observed.size} indices"
            )
        if observed.size == self.dim:
            raise ValidationError(
                "cannot condition on every coordinate; nothing remains"
            )
        free = np.setdiff1d(np.arange(self.dim), observed)
        cov_bb = self._cov[np.ix_(observed, observed)]
        cov_ab = self._cov[np.ix_(free, observed)]
        cov_aa = self._cov[np.ix_(free, free)]
        bb_inverse = psd_inverse(cov_bb)
        gain = cov_ab @ bb_inverse
        mean = self._mean[free] + gain @ (obs_values - self._mean[observed])
        cov = cov_aa - gain @ cov_ab.T
        return MultivariateNormal(mean, (cov + cov.T) / 2.0)

    def __repr__(self) -> str:
        return f"MultivariateNormal(dim={self.dim})"


def _check_indices(indices, dim: int) -> np.ndarray:
    """Validate a list of distinct coordinate indices into range(dim)."""
    idx = np.asarray(indices, dtype=np.intp).ravel()
    if idx.size == 0:
        raise ValidationError("'indices' must be non-empty")
    if np.unique(idx).size != idx.size:
        raise ValidationError("'indices' contains duplicates")
    if idx.min() < 0 or idx.max() >= dim:
        raise ValidationError(
            f"'indices' must lie in [0, {dim - 1}], got range "
            f"[{idx.min()}, {idx.max()}]"
        )
    return idx
