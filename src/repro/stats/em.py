"""Expectation-maximization for univariate Gaussian mixtures.

Supports the non-Gaussian-prior extension: the adversary can fit a
mixture to (a deconvolved estimate of) the original marginal and feed it
to the gradient-descent MAP reconstructor (Section 6's closing remark
that non-normal priors require numerical methods).
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.exceptions import ConvergenceError, ValidationError
from repro.stats.density import GaussianMixtureDensity
from repro.telemetry import trace
from repro.telemetry.convergence import NULL_TRACKER
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int, check_vector

__all__ = ["UnivariateGaussianMixtureEM"]

#: Log-likelihood values a :class:`~repro.exceptions.ConvergenceError`
#: carries as its trajectory tail (kept regardless of tracing, so the
#: exception is diagnosable even from an untraced production run).
_ERROR_TAIL = 8


class UnivariateGaussianMixtureEM:
    """EM fitting of a ``k``-component univariate Gaussian mixture.

    Parameters
    ----------
    n_components:
        Number of mixture components ``k >= 1``.
    max_iter:
        Iteration budget.
    tol:
        Convergence threshold on the mean log-likelihood improvement.
    min_std:
        Lower bound on component standard deviations, preventing the
        classic EM variance collapse onto a single sample.
    """

    def __init__(
        self,
        n_components: int,
        *,
        max_iter: int = 200,
        tol: float = 1e-7,
        min_std: float = 1e-3,
    ):
        self.n_components = check_positive_int(n_components, "n_components")
        self.max_iter = check_positive_int(max_iter, "max_iter")
        if tol <= 0.0:
            raise ValidationError(f"tol must be positive, got {tol}")
        self.tol = float(tol)
        if min_std <= 0.0:
            raise ValidationError(f"min_std must be positive, got {min_std}")
        self.min_std = float(min_std)

    def fit(self, samples, rng=None) -> GaussianMixtureDensity:
        """Fit the mixture to samples and return the resulting density.

        When tracing is active (see :mod:`repro.telemetry.trace`), the
        whole sweep is covered by one ``em.fit`` span annotated with the
        sample count, component count, and realized iteration count, and
        an :class:`~repro.telemetry.convergence.IterationTracker`
        records the per-iteration log-likelihood trajectory into the
        span's ``repro-convergence/v1`` payload; with tracing off the
        hook is a single predicate check and the tracker is the shared
        no-op singleton, pinned under 2% overhead by the
        ``telemetry.convergence`` micro-benchmark.

        Raises
        ------
        ConvergenceError
            If the log-likelihood has not stabilized within ``max_iter``
            iterations.  The exception carries the final
            log-likelihood, the last delta, and the trajectory tail.
        """
        data = check_vector(samples, "samples", min_length=self.n_components)
        generator = as_generator(rng)
        if not trace.enabled():
            return self._fit(data, generator, NULL_TRACKER)[0]
        with trace.span(
            "em.fit", n=int(data.size), n_components=self.n_components
        ) as span:
            tracker = trace.iterations("em.fit")
            try:
                density, iterations = self._fit(data, generator, tracker)
            except ConvergenceError:
                tracker.finish(converged=False)
                raise
            span.set(iterations=iterations)
            tracker.finish(converged=True)
            return density

    def _fit(self, data, generator, tracker=NULL_TRACKER):
        """The EM sweep behind :meth:`fit`; returns ``(density, iterations)``.

        ``tracker`` receives one record per iteration (log-likelihood
        and its improvement); the default no-op tracker keeps the
        untraced path allocation-free.  The numerics are identical
        either way — every recorded value is computed by the sweep
        itself.
        """
        weights, means, stds = self._initialize(data, generator)

        previous_ll = -np.inf
        delta = math.inf
        tail: deque[float] = deque(maxlen=_ERROR_TAIL)
        for iteration in range(1, self.max_iter + 1):
            responsibilities, log_likelihood = self._e_step(
                data, weights, means, stds
            )
            weights, means, stds = self._m_step(data, responsibilities)
            delta = abs(log_likelihood - previous_ll)
            tail.append(log_likelihood)
            # Iteration 1 has no previous likelihood (delta is inf by
            # construction, not by sickness), so only the objective is
            # recorded for it.
            improvement = delta if iteration > 1 else None
            tracker.record(objective=log_likelihood, delta=improvement)
            if delta < self.tol * max(1.0, abs(previous_ll)):
                return GaussianMixtureDensity(weights, means, stds), iteration
            previous_ll = log_likelihood
        raise ConvergenceError(
            "EM did not converge",
            iterations=self.max_iter,
            final_objective=previous_ll,
            last_delta=delta,
            trajectory_tail=tuple(tail),
        )

    # ------------------------------------------------------------------
    def _initialize(self, data, generator):
        """Quantile-spread means, global variance, uniform weights."""
        k = self.n_components
        quantiles = np.linspace(0.0, 100.0, k + 2)[1:-1]
        means = np.percentile(data, quantiles)
        # Break ties for repeated quantiles with a small jitter.
        spread = max(float(np.std(data)), self.min_std)
        means = means + 0.01 * spread * generator.standard_normal(k)
        stds = np.full(k, max(spread, self.min_std))
        weights = np.full(k, 1.0 / k)
        return weights, means, stds

    def _e_step(self, data, weights, means, stds):
        """Responsibilities and total mean log-likelihood (log-sum-exp)."""
        z = (data[:, None] - means[None, :]) / stds[None, :]
        log_comp = (
            -0.5 * z * z
            - np.log(stds[None, :])
            - 0.5 * math.log(2.0 * math.pi)
            + np.log(np.maximum(weights[None, :], 1e-300))
        )
        peak = log_comp.max(axis=1, keepdims=True)
        stabilized = np.exp(log_comp - peak)
        norm = stabilized.sum(axis=1, keepdims=True)
        responsibilities = stabilized / norm
        log_likelihood = float(np.mean(np.log(norm.ravel()) + peak.ravel()))
        return responsibilities, log_likelihood

    def _m_step(self, data, responsibilities):
        """Closed-form weight/mean/variance updates."""
        counts = responsibilities.sum(axis=0)
        counts = np.maximum(counts, 1e-12)
        weights = counts / data.size
        means = (responsibilities.T @ data) / counts
        centered_sq = (data[:, None] - means[None, :]) ** 2
        variances = np.einsum("nk,nk->k", responsibilities, centered_sq) / counts
        stds = np.sqrt(np.maximum(variances, self.min_std**2))
        return weights, means, stds
