"""Statistics substrate: densities, KDE, multivariate normal, EM.

UDR (Section 4.2) needs univariate densities for the prior ``f_X``, the
noise ``f_R``, and their convolution ``f_Y``; BE-DR (Section 6) needs a
full multivariate-normal model with conditionals for the
partial-disclosure extension.
"""

from repro.stats.density import (
    Density,
    GaussianDensity,
    GaussianMixtureDensity,
    HistogramDensity,
    LaplaceDensity,
    UniformDensity,
)
from repro.stats.em import UnivariateGaussianMixtureEM
from repro.stats.kde import GaussianKDE, cv_bandwidth, silverman_bandwidth
from repro.stats.moments import standardize, weighted_mean_and_variance
from repro.stats.mvn import MultivariateNormal

__all__ = [
    "Density",
    "GaussianDensity",
    "GaussianMixtureDensity",
    "HistogramDensity",
    "LaplaceDensity",
    "UniformDensity",
    "UnivariateGaussianMixtureEM",
    "GaussianKDE",
    "silverman_bandwidth",
    "cv_bandwidth",
    "standardize",
    "weighted_mean_and_variance",
    "MultivariateNormal",
]
