"""Gaussian kernel density estimation.

UDR needs the marginal density ``f_Y`` of the disguised data; the paper
notes it "can be estimated from the samples" (Section 4.2).  A Gaussian
KDE with Silverman's bandwidth is the standard non-parametric choice and
doubles as a smooth alternative to :class:`~repro.stats.density.
HistogramDensity` for the prior.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ValidationError
from repro.stats.density import Density
from repro.utils.rng import as_generator
from repro.utils.validation import check_in_range, check_vector

__all__ = ["silverman_bandwidth", "GaussianKDE"]


def silverman_bandwidth(samples) -> float:
    """Silverman's rule-of-thumb bandwidth for a Gaussian kernel.

    ``h = 0.9 * min(std, IQR / 1.34) * n^(-1/5)``; robust to moderate
    non-normality and outliers via the IQR term.
    """
    data = check_vector(samples, "samples", min_length=2)
    n = data.size
    std = float(np.std(data, ddof=1))
    q75, q25 = np.percentile(data, [75.0, 25.0])
    iqr = float(q75 - q25)
    spread_candidates = [s for s in (std, iqr / 1.34) if s > 0.0]
    if not spread_candidates:
        raise ValidationError(
            "'samples' are all identical; bandwidth is undefined"
        )
    spread = min(spread_candidates)
    return 0.9 * spread * n ** (-0.2)


class GaussianKDE(Density):
    """Gaussian kernel density estimate over a 1-D sample.

    Parameters
    ----------
    samples:
        Observed values, shape ``(n,)``.
    bandwidth:
        Kernel standard deviation; defaults to Silverman's rule.
    """

    def __init__(self, samples, bandwidth: float | None = None):
        self._samples = check_vector(samples, "samples", min_length=2)
        if bandwidth is None:
            bandwidth = silverman_bandwidth(self._samples)
        self._bandwidth = check_in_range(
            bandwidth, "bandwidth", low=0.0, inclusive_low=False
        )

    @property
    def bandwidth(self) -> float:
        """Kernel standard deviation."""
        return self._bandwidth

    @property
    def n_samples(self) -> int:
        """Number of training samples."""
        return int(self._samples.size)

    def pdf(self, x) -> np.ndarray:
        array = self._as_array(x)
        flat = np.atleast_1d(array).ravel()
        # Evaluate in blocks so an (n_eval, n_samples) matrix never gets
        # too large for big experiments.
        block = max(1, int(4_000_000 // max(self._samples.size, 1)))
        out = np.empty(flat.size, dtype=np.float64)
        norm = self._bandwidth * math.sqrt(2.0 * math.pi)
        for start in range(0, flat.size, block):
            stop = min(start + block, flat.size)
            z = (
                flat[start:stop, None] - self._samples[None, :]
            ) / self._bandwidth
            out[start:stop] = np.exp(-0.5 * z * z).mean(axis=1) / norm
        return out.reshape(array.shape)

    @property
    def mean(self) -> float:
        return float(self._samples.mean())

    @property
    def variance(self) -> float:
        # Convolution with the kernel adds its variance.
        return float(np.var(self._samples)) + self._bandwidth**2

    def support(self, coverage: float = 0.9999) -> tuple[float, float]:
        check_in_range(coverage, "coverage", low=0.0, high=1.0,
                       inclusive_low=False)
        pad = 4.0 * self._bandwidth
        return (
            float(self._samples.min()) - pad,
            float(self._samples.max()) + pad,
        )

    def sample(self, size: int, rng=None) -> np.ndarray:
        generator = as_generator(rng)
        picks = generator.choice(self._samples, size=size, replace=True)
        return picks + generator.normal(0.0, self._bandwidth, size=size)

    def __repr__(self) -> str:
        return (
            f"GaussianKDE(n_samples={self.n_samples}, "
            f"bandwidth={self._bandwidth:.4g})"
        )
