"""Gaussian kernel density estimation.

UDR needs the marginal density ``f_Y`` of the disguised data; the paper
notes it "can be estimated from the samples" (Section 4.2).  A Gaussian
KDE with Silverman's bandwidth is the standard non-parametric choice and
doubles as a smooth alternative to :class:`~repro.stats.density.
HistogramDensity` for the prior.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ValidationError
from repro.stats.density import Density
from repro.telemetry import trace
from repro.telemetry.convergence import NULL_TRACKER
from repro.utils.rng import as_generator
from repro.utils.validation import check_in_range, check_vector

__all__ = ["silverman_bandwidth", "cv_bandwidth", "GaussianKDE"]


def silverman_bandwidth(samples) -> float:
    """Silverman's rule-of-thumb bandwidth for a Gaussian kernel.

    ``h = 0.9 * min(std, IQR / 1.34) * n^(-1/5)``; robust to moderate
    non-normality and outliers via the IQR term.
    """
    data = check_vector(samples, "samples", min_length=2)
    n = data.size
    std = float(np.std(data, ddof=1))
    q75, q25 = np.percentile(data, [75.0, 25.0])
    iqr = float(q75 - q25)
    spread_candidates = [s for s in (std, iqr / 1.34) if s > 0.0]
    if not spread_candidates:
        raise ValidationError(
            "'samples' are all identical; bandwidth is undefined"
        )
    spread = min(spread_candidates)
    return 0.9 * spread * n ** (-0.2)


def _loo_log_likelihood(
    sorted_samples: np.ndarray, bandwidth: float, cutoff: float
) -> float:
    """Mean leave-one-out log-likelihood of the KDE at ``bandwidth``.

    Each sample is scored by the density the *other* ``n - 1`` kernels
    place on it: the full kernel sum minus the self-kernel (which is
    exactly 1 before normalization).  Evaluation reuses the sorted
    windowed strategy of :meth:`GaussianKDE.pdf` so selection stays
    ``O(n * window)`` instead of ``O(n^2)``.
    """
    n = sorted_samples.size
    radius = cutoff * bandwidth
    totals = np.empty(n, dtype=np.float64)
    block = max(1, int(4_000_000 // max(n, 1)))
    for start in range(0, n, block):
        chunk = sorted_samples[start : start + block]
        lo = int(np.searchsorted(sorted_samples, chunk[0] - radius, "left"))
        hi = int(np.searchsorted(sorted_samples, chunk[-1] + radius, "right"))
        z = (chunk[:, None] - sorted_samples[lo:hi]) / bandwidth
        totals[start : start + block] = np.exp(-0.5 * z * z).sum(axis=1)
    norm = (n - 1) * bandwidth * math.sqrt(2.0 * math.pi)
    loo = np.maximum(totals - 1.0, 1e-300) / norm
    return float(np.mean(np.log(loo)))


def cv_bandwidth(
    samples,
    *,
    span: float = 8.0,
    tol: float = 1e-3,
    max_iter: int = 40,
    cutoff: float = 8.5,
) -> float:
    """Leave-one-out cross-validated bandwidth via golden-section search.

    Maximizes the mean leave-one-out log-likelihood over ``log h`` in
    ``[log(h_silverman / span), log(h_silverman * span)]`` — an
    iterative refinement of Silverman's rule that adapts to skewed or
    multi-modal data, where the rule-of-thumb over-smooths.

    When tracing is active the search runs under a ``kde.bandwidth``
    span whose :class:`~repro.telemetry.convergence.IterationTracker`
    records the best CV score (objective) and the log-space bracket
    width (delta) per iteration.

    Parameters
    ----------
    samples:
        Observed values, shape ``(n,)``, ``n >= 3``.
    span:
        Half-range of the search bracket as a factor of the Silverman
        bandwidth; must be ``> 1``.
    tol:
        Convergence threshold on the log-space bracket width.
    max_iter:
        Iteration budget for the golden-section search.
    cutoff:
        Kernel truncation radius in bandwidths (see
        :class:`GaussianKDE`).

    Returns
    -------
    float
        The selected bandwidth (bracket midpoint at convergence).
    """
    data = check_vector(samples, "samples", min_length=3)
    check_in_range(span, "span", low=1.0, inclusive_low=False)
    check_in_range(tol, "tol", low=0.0, inclusive_low=False)
    check_in_range(cutoff, "cutoff", low=0.0, inclusive_low=False)
    if max_iter < 1:
        raise ValidationError(f"max_iter must be >= 1, got {max_iter}")
    anchor = silverman_bandwidth(data)
    sorted_samples = np.sort(data).astype(np.float64)
    lo = math.log(anchor / span)
    hi = math.log(anchor * span)
    if not trace.enabled():
        return _golden_section(
            sorted_samples, lo, hi, tol, max_iter, cutoff, NULL_TRACKER
        )[0]
    with trace.span("kde.bandwidth", n=int(data.size)) as open_span:
        tracker = trace.iterations("kde.bandwidth")
        bandwidth, iterations, converged = _golden_section(
            sorted_samples, lo, hi, tol, max_iter, cutoff, tracker
        )
        tracker.finish(converged=converged)
        open_span.set(iterations=iterations, bandwidth=bandwidth)
        return bandwidth


def _golden_section(
    sorted_samples: np.ndarray,
    lo: float,
    hi: float,
    tol: float,
    max_iter: int,
    cutoff: float,
    tracker,
) -> tuple[float, int, bool]:
    """Golden-section ascent on the LOO score over ``log h``.

    Returns ``(bandwidth, iterations, converged)``; the tracker gets
    one record per bracket shrink.
    """
    invphi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - invphi * (b - a)
    d = a + invphi * (b - a)
    fc = _loo_log_likelihood(sorted_samples, math.exp(c), cutoff)
    fd = _loo_log_likelihood(sorted_samples, math.exp(d), cutoff)
    iterations = 0
    converged = False
    for _ in range(max_iter):
        iterations += 1
        if fc >= fd:
            b, d, fd = d, c, fc
            c = b - invphi * (b - a)
            fc = _loo_log_likelihood(sorted_samples, math.exp(c), cutoff)
        else:
            a, c, fc = c, d, fd
            d = a + invphi * (b - a)
            fd = _loo_log_likelihood(sorted_samples, math.exp(d), cutoff)
        best = fc if fc >= fd else fd
        width = b - a
        tracker.record(objective=best, delta=width)
        if width < tol:
            converged = True
            break
    return math.exp((a + b) / 2.0), iterations, converged


class GaussianKDE(Density):
    """Gaussian kernel density estimate over a 1-D sample.

    Evaluation uses a sorted-sample truncated-kernel strategy: samples
    farther than ``cutoff`` bandwidths from an evaluation point are
    skipped via binary search.  Each skipped term contributes less than
    ``exp(-cutoff**2 / 2)`` relative to the kernel peak — below one
    double-precision ulp at the default ``cutoff=8.5`` — so results
    agree with the dense ``O(n_eval * n)`` evaluation to within
    ``2.1e-16 / (bandwidth * sqrt(2 * pi))`` absolutely (machine
    precision relative to the density scale) while doing only the
    arithmetic that can affect the answer.

    Parameters
    ----------
    samples:
        Observed values, shape ``(n,)``.
    bandwidth:
        Kernel standard deviation; defaults to Silverman's rule
        (:func:`silverman_bandwidth`).  The string ``"cv"`` selects
        the bandwidth by leave-one-out cross-validation
        (:func:`cv_bandwidth`); ``"silverman"`` names the default
        explicitly.
    cutoff:
        Truncation radius in bandwidths for :meth:`pdf`; larger is
        (immeasurably) more accurate, smaller is faster.  The default
        ``8.5`` keeps truncation error below double-precision rounding.
    """

    def __init__(
        self,
        samples,
        bandwidth: float | str | None = None,
        *,
        cutoff: float = 8.5,
    ):
        self._samples = check_vector(samples, "samples", min_length=2)
        if isinstance(bandwidth, str):
            if bandwidth == "cv":
                bandwidth = cv_bandwidth(self._samples, cutoff=cutoff)
            elif bandwidth == "silverman":
                bandwidth = None
            else:
                raise ValidationError(
                    "bandwidth must be a positive number, 'silverman', "
                    f"or 'cv'; got {bandwidth!r}"
                )
        if bandwidth is None:
            bandwidth = silverman_bandwidth(self._samples)
        self._bandwidth = check_in_range(
            bandwidth, "bandwidth", low=0.0, inclusive_low=False
        )
        self._cutoff = check_in_range(
            cutoff, "cutoff", low=0.0, inclusive_low=False
        )
        # Sorted copy for windowed evaluation; ``_samples`` keeps the
        # caller's order so :meth:`sample` draws are unchanged.
        self._sorted = np.sort(self._samples)

    @property
    def bandwidth(self) -> float:
        """Kernel standard deviation."""
        return self._bandwidth

    @property
    def n_samples(self) -> int:
        """Number of training samples."""
        return int(self._samples.size)

    def pdf(self, x) -> np.ndarray:
        """Density at ``x``, elementwise.

        Parameters
        ----------
        x:
            Evaluation points, any shape; the result matches it.

        Returns
        -------
        numpy.ndarray
            ``(1/n) * sum_i N(x; s_i, bandwidth)`` with kernels beyond
            ``cutoff`` bandwidths truncated (see the class docstring
            for the — sub-ulp — error bound).
        """
        if not trace.enabled():
            return self._pdf(x)
        with trace.span("kde.pdf", n_samples=self.n_samples) as span:
            out = self._pdf(x)
            span.set(n_eval=int(out.size))
            return out

    def _pdf(self, x) -> np.ndarray:
        """The uninstrumented windowed evaluation behind :meth:`pdf`."""
        array = self._as_array(x)
        flat = np.atleast_1d(array).ravel().astype(np.float64)
        out = np.zeros(flat.size, dtype=np.float64)
        norm = self._bandwidth * math.sqrt(2.0 * math.pi)
        n = self._sorted.size
        radius = self._cutoff * self._bandwidth

        finite = np.isfinite(flat)
        out[~finite] = np.where(np.isnan(flat[~finite]), np.nan, 0.0)

        # Process evaluation points in sorted order so each block of
        # consecutive points shares one contiguous sample window found
        # by binary search; blocks are sized to keep the (block, window)
        # kernel matrix at the historical dense-evaluation footprint.
        order = np.flatnonzero(finite)[np.argsort(flat[finite], kind="stable")]
        block = max(1, int(4_000_000 // max(n, 1)))
        for start in range(0, order.size, block):
            idx = order[start : start + block]
            chunk = flat[idx]
            lo = int(np.searchsorted(self._sorted, chunk[0] - radius, "left"))
            hi = int(np.searchsorted(self._sorted, chunk[-1] + radius, "right"))
            if hi <= lo:
                continue
            z = (chunk[:, None] - self._sorted[lo:hi]) / self._bandwidth
            out[idx] = np.exp(-0.5 * z * z).sum(axis=1) / (n * norm)
        return out.reshape(array.shape)

    @property
    def mean(self) -> float:
        """Sample mean (the KDE's expected value)."""
        return float(self._samples.mean())

    @property
    def variance(self) -> float:
        """Sample variance plus ``bandwidth**2`` (kernel convolution)."""
        return float(np.var(self._samples)) + self._bandwidth**2

    def support(self, coverage: float = 0.9999) -> tuple[float, float]:
        """Sample range padded by 4 bandwidths on each side."""
        check_in_range(coverage, "coverage", low=0.0, high=1.0,
                       inclusive_low=False)
        pad = 4.0 * self._bandwidth
        return (
            float(self._samples.min()) - pad,
            float(self._samples.max()) + pad,
        )

    def sample(self, size: int, rng=None) -> np.ndarray:
        """Smoothed bootstrap: resample the data, add kernel noise."""
        generator = as_generator(rng)
        picks = generator.choice(self._samples, size=size, replace=True)
        return picks + generator.normal(0.0, self._bandwidth, size=size)

    def __repr__(self) -> str:
        return (
            f"GaussianKDE(n_samples={self.n_samples}, "
            f"bandwidth={self._bandwidth:.4g})"
        )
