"""Eigenvalue-spectrum builders for the paper's experiment designs.

Every experiment in Section 7 fixes correlations through the eigenvalue
profile:

* **Experiment 1** — ``p`` large eigenvalues, ``m - p`` small ones, with
  ``m`` swept and the *trace held proportional to m* so the UDR baseline
  stays constant (Eq. 12: ``sum(lambda_i) = sum(a_ii)``).
* **Experiment 2** — same two-level shape, with ``p`` swept at fixed
  trace.
* **Experiment 3** — fixed ``p = 20`` principals at ``lambda = 400``, the
  non-principal value swept from 1 to 50.

:func:`two_level_spectrum` builds all of these; :func:`rescale_to_trace`
enforces Eq. 12 and :func:`decaying_spectrum` provides smoother profiles
for ablations.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SpectrumError
from repro.utils.validation import check_in_range, check_positive_int, check_vector

__all__ = ["two_level_spectrum", "decaying_spectrum", "rescale_to_trace"]


def two_level_spectrum(
    n_attributes: int,
    n_principal: int,
    *,
    total_variance: float | None = None,
    non_principal_value: float = 4.0,
    principal_value: float | None = None,
) -> np.ndarray:
    """Two-level eigenvalue spectrum: ``p`` large values, ``m - p`` small.

    Exactly one of ``total_variance`` and ``principal_value`` must be
    given.  With ``total_variance`` the principal value is solved from
    Eq. 12 so that ``sum(spectrum) == total_variance``; with
    ``principal_value`` the trace is whatever falls out (Experiment 3
    style, where the paper lets the trace drift as the non-principal
    eigenvalue grows).

    Parameters
    ----------
    n_attributes:
        ``m``, the data dimension.
    n_principal:
        ``p``, how many leading eigenvalues are large; ``1 <= p <= m``.
    total_variance:
        Desired trace ``sum(lambda_i)``.
    non_principal_value:
        The small eigenvalue shared by the trailing ``m - p`` components.
    principal_value:
        The large eigenvalue shared by the leading ``p`` components.

    Returns
    -------
    numpy.ndarray
        Spectrum of length ``m`` sorted descending.
    """
    m = check_positive_int(n_attributes, "n_attributes")
    p = check_positive_int(n_principal, "n_principal")
    if p > m:
        raise SpectrumError(
            f"n_principal={p} cannot exceed n_attributes={m}"
        )
    low = check_in_range(
        non_principal_value, "non_principal_value", low=0.0,
        inclusive_low=False,
    )
    if (total_variance is None) == (principal_value is None):
        raise SpectrumError(
            "exactly one of 'total_variance' and 'principal_value' must "
            "be provided"
        )
    if principal_value is None:
        trace = check_in_range(
            total_variance, "total_variance", low=0.0, inclusive_low=False
        )
        high = (trace - (m - p) * low) / p
        if high <= low:
            raise SpectrumError(
                f"total_variance={trace} is too small to place a principal "
                f"eigenvalue above non_principal_value={low} "
                f"(would give {high:.4g})"
            )
    else:
        high = check_in_range(
            principal_value, "principal_value", low=0.0, inclusive_low=False
        )
        if high < low:
            raise SpectrumError(
                f"principal_value={high} must be >= "
                f"non_principal_value={low}"
            )
    spectrum = np.full(m, low, dtype=np.float64)
    spectrum[:p] = high
    return spectrum


def decaying_spectrum(
    n_attributes: int,
    *,
    decay: float = 0.8,
    total_variance: float | None = None,
) -> np.ndarray:
    """Geometric eigenvalue decay ``lambda_k ∝ decay^k``.

    A smoother correlation profile than the two-level design; used by the
    component-selection ablation where no clean eigen-gap exists.

    Parameters
    ----------
    n_attributes:
        Spectrum length ``m``.
    decay:
        Ratio between consecutive eigenvalues, in ``(0, 1)``.
    total_variance:
        If given, the spectrum is rescaled to this trace.
    """
    m = check_positive_int(n_attributes, "n_attributes")
    rate = check_in_range(
        decay, "decay", low=0.0, high=1.0,
        inclusive_low=False, inclusive_high=False,
    )
    spectrum = rate ** np.arange(m, dtype=np.float64)
    if total_variance is not None:
        spectrum = rescale_to_trace(spectrum, total_variance)
    return spectrum


def rescale_to_trace(spectrum, total_variance: float) -> np.ndarray:
    """Rescale a spectrum so its sum equals ``total_variance`` (Eq. 12).

    The paper keeps the UDR baseline flat across sweep points by fixing
    the trace (the sum of attribute variances); this helper applies that
    normalization to any candidate spectrum.
    """
    values = check_vector(spectrum, "spectrum")
    if np.any(values < 0.0):
        raise SpectrumError("eigenvalues must be non-negative")
    current = float(values.sum())
    if current <= 0.0:
        raise SpectrumError("spectrum sums to zero; cannot rescale")
    target = check_in_range(
        total_variance, "total_variance", low=0.0, inclusive_low=False
    )
    return values * (target / current)
