"""Serially dependent data for the sample-dependency extension.

Section 3 lists *sample dependency* (e.g. time series) as a privacy risk
orthogonal to attribute correlation: "various techniques are available
from the signal processing literature to de-noise the contaminated
signals."  This module generates stationary VAR(1)/AR(1) data so the
Wiener-smoother attack (:mod:`repro.reconstruction.wiener`) has a
realistic target.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.registry import check_spec, register_dataset
from repro.utils.rng import as_generator
from repro.utils.validation import (
    check_in_range,
    check_matrix,
    check_positive_int,
)

__all__ = ["VectorAutoregressiveGenerator"]


@register_dataset("var")
class VectorAutoregressiveGenerator:
    """Stationary first-order vector autoregression ``x_t = A x_{t-1} + w_t``.

    Parameters
    ----------
    coefficient:
        Either a scalar ``phi`` (same AR(1) coefficient on every channel,
        diagonal ``A = phi * I``) or a full ``(m, m)`` matrix whose
        spectral radius must be below 1 for stationarity.
    innovation_std:
        Standard deviation of the i.i.d. Gaussian innovations ``w_t``.
    n_channels:
        Number of parallel series ``m`` (only needed for scalar
        ``coefficient``).
    """

    def __init__(
        self,
        coefficient,
        *,
        innovation_std: float = 1.0,
        n_channels: int | None = None,
    ):
        if np.isscalar(coefficient):
            phi = check_in_range(
                coefficient, "coefficient", low=-1.0, high=1.0,
                inclusive_low=False, inclusive_high=False,
            )
            m = check_positive_int(
                n_channels if n_channels is not None else 1, "n_channels"
            )
            self._transition = phi * np.eye(m)
        else:
            matrix = check_matrix(coefficient, "coefficient")
            if matrix.shape[0] != matrix.shape[1]:
                raise ValidationError("'coefficient' matrix must be square")
            radius = float(np.max(np.abs(np.linalg.eigvals(matrix))))
            if radius >= 1.0:
                raise ValidationError(
                    f"spectral radius {radius:.4g} >= 1; the VAR(1) process "
                    "is not stationary"
                )
            if n_channels is not None and n_channels != matrix.shape[0]:
                raise ValidationError(
                    "n_channels conflicts with the coefficient matrix size"
                )
            self._transition = matrix
        self._innovation_std = check_in_range(
            innovation_std, "innovation_std", low=0.0, inclusive_low=False
        )

    @property
    def n_channels(self) -> int:
        """Number of parallel series."""
        return int(self._transition.shape[0])

    @property
    def transition(self) -> np.ndarray:
        """Transition matrix ``A`` (copy)."""
        return self._transition.copy()

    @property
    def innovation_std(self) -> float:
        """Innovation standard deviation."""
        return self._innovation_std

    def to_spec(self) -> dict:
        # Emit the realized transition matrix so scalar- and
        # matrix-built instances round-trip identically.
        return {
            "kind": "var",
            "coefficient": self._transition.tolist(),
            "innovation_std": self._innovation_std,
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "VectorAutoregressiveGenerator":
        check_spec(
            spec,
            "var",
            required=("coefficient",),
            optional=("innovation_std", "n_channels"),
        )
        coefficient = spec["coefficient"]
        if not isinstance(coefficient, list):
            coefficient = float(coefficient)
        else:
            coefficient = np.asarray(coefficient, dtype=np.float64)
        n_channels = spec.get("n_channels")
        return cls(
            coefficient,
            innovation_std=float(spec.get("innovation_std", 1.0)),
            n_channels=None if n_channels is None else int(n_channels),
        )

    def stationary_covariance(self, *, max_terms: int = 10_000) -> np.ndarray:
        """Stationary covariance: solves ``S = A S A^T + s^2 I``.

        Computed by the Neumann series ``sum_k A^k (s^2 I) (A^T)^k``,
        truncated when terms fall below machine precision.
        """
        m = self.n_channels
        term = self._innovation_std**2 * np.eye(m)
        total = term.copy()
        for _ in range(max_terms):
            term = self._transition @ term @ self._transition.T
            total += term
            if float(np.abs(term).max()) < 1e-14 * float(np.abs(total).max()):
                return (total + total.T) / 2.0
        raise ValidationError(
            "stationary covariance did not converge; the process is too "
            "close to the unit root"
        )

    def sample(
        self,
        n_steps: int,
        *,
        burn_in: int = 200,
        rng=None,
    ) -> np.ndarray:
        """Simulate ``n_steps`` observations, shape ``(n_steps, m)``.

        A burn-in period is discarded so the returned slice is
        approximately stationary regardless of the zero initial state.
        """
        steps = check_positive_int(n_steps, "n_steps")
        warmup = check_positive_int(burn_in, "burn_in", minimum=0)
        generator = as_generator(rng)
        m = self.n_channels
        state = np.zeros(m)
        total = warmup + steps
        innovations = generator.normal(
            0.0, self._innovation_std, size=(total, m)
        )
        output = np.empty((steps, m), dtype=np.float64)
        for t in range(total):
            state = self._transition @ state + innovations[t]
            if t >= warmup:
                output[t - warmup] = state
        return output

    def autocovariance(self, lag: int) -> np.ndarray:
        """Theoretical lag-``lag`` autocovariance ``A^lag S``."""
        check_positive_int(lag, "lag", minimum=0)
        stationary = self.stationary_covariance()
        return np.linalg.matrix_power(self._transition, lag) @ stationary

    def __repr__(self) -> str:
        return (
            f"VectorAutoregressiveGenerator(m={self.n_channels}, "
            f"innovation_std={self._innovation_std:g})"
        )
