"""Synthetic-data substrate reproducing the paper's Section 7.1 pipeline.

The paper generates covariance matrices "in reverse": choose eigenvalues,
draw a random orthonormal eigenbasis via Gram-Schmidt, form ``C = Q
diag(lambda) Q^T``, then sample multivariate-normal records from ``C``
(Matlab's ``mvnrnd``; here :class:`repro.stats.mvn.MultivariateNormal`).
"""

from repro.data.copula import GaussianCopulaGenerator
from repro.data.covariance_builder import CovarianceModel
from repro.data.census import CensusLikeGenerator, CensusTable
from repro.data.spectra import (
    decaying_spectrum,
    rescale_to_trace,
    two_level_spectrum,
)
from repro.data.synthetic import SyntheticDataset, generate_dataset
from repro.data.timeseries import VectorAutoregressiveGenerator

__all__ = [
    "GaussianCopulaGenerator",
    "CovarianceModel",
    "CensusLikeGenerator",
    "CensusTable",
    "decaying_spectrum",
    "rescale_to_trace",
    "two_level_spectrum",
    "SyntheticDataset",
    "generate_dataset",
    "VectorAutoregressiveGenerator",
]
