"""Gaussian-copula generator: fixed correlation, non-normal marginals.

Section 6 assumes multivariate-normal data and notes the assumption "can
be relaxed".  Testing that relaxation needs data whose *correlation
structure* matches the paper's synthetic methodology while the *marginal
shapes* do not.  A Gaussian copula provides exactly that: draw latent
multivariate-normal rows, push each coordinate through the standard
normal CDF to a uniform, then through the inverse CDF of the target
marginal.  Monotone transforms preserve rank correlations, so the
dependence structure survives while skew/multi-modality appear.

Marginals: ``"normal"`` (identity — sanity baseline), ``"lognormal"``
(right-skewed, like income), ``"uniform"`` (light-tailed), ``"bimodal"``
(two clusters, like a mixed-population biomarker).  All outputs are
standardized to mean 0 and a chosen per-attribute standard deviation so
attack errors are comparable across shapes.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import ndtr, ndtri

from repro.data.covariance_builder import CovarianceModel
from repro.exceptions import ValidationError
from repro.linalg.covariance import correlation_from_covariance
from repro.registry import check_spec, register_dataset
from repro.stats.mvn import MultivariateNormal
from repro.utils.rng import as_generator
from repro.utils.validation import check_in_range, check_positive_int

__all__ = ["GaussianCopulaGenerator"]

_MARGINALS = ("normal", "lognormal", "uniform", "bimodal")

# Lognormal shape parameter: exp(s * Z).  s = 0.8 gives visible skew
# (skewness ~ 3.7) without extreme outliers dominating RMSE.
_LOGNORMAL_SHAPE = 0.8
# Bimodal mixture: modes at +-delta with component std 0.4, balanced.
_BIMODAL_DELTA = 1.0
_BIMODAL_STD = 0.4


@register_dataset("copula")
class GaussianCopulaGenerator:
    """Correlated tables with chosen marginal shapes.

    Parameters
    ----------
    correlation:
        Latent correlation matrix, shape ``(m, m)``.
    marginal:
        One of ``"normal"``, ``"lognormal"``, ``"uniform"``,
        ``"bimodal"``.
    target_std:
        Standard deviation every output attribute is scaled to.
    """

    def __init__(self, correlation, *, marginal: str = "normal",
                 target_std: float = 1.0):
        corr = np.asarray(correlation, dtype=np.float64)
        corr = correlation_from_covariance(corr)
        if marginal not in _MARGINALS:
            raise ValidationError(
                f"marginal must be one of {_MARGINALS}, got {marginal!r}"
            )
        self._corr = corr
        self._marginal = marginal
        self._target_std = check_in_range(
            target_std, "target_std", low=0.0, inclusive_low=False
        )
        self._latent = MultivariateNormal(
            np.zeros(corr.shape[0]), corr
        )

    @classmethod
    def from_spectrum(
        cls,
        spectrum,
        *,
        marginal: str = "normal",
        target_std: float = 1.0,
        rng=None,
    ) -> "GaussianCopulaGenerator":
        """Latent correlation built by the paper's reverse construction.

        The spectrum controls how concentrated the latent correlation is
        (exactly as in Section 7.1); the resulting covariance is
        normalized to a correlation matrix before use.
        """
        model = CovarianceModel.from_spectrum(spectrum, rng)
        return cls(
            correlation_from_covariance(model.matrix),
            marginal=marginal,
            target_std=target_std,
        )

    @property
    def n_attributes(self) -> int:
        """Number of generated attributes."""
        return int(self._corr.shape[0])

    @property
    def marginal(self) -> str:
        """The configured marginal shape."""
        return self._marginal

    @property
    def latent_correlation(self) -> np.ndarray:
        """The copula's latent correlation matrix (copy)."""
        return self._corr.copy()

    def to_spec(self) -> dict:
        # Always emit the realized correlation matrix, so round-trips
        # are exact even for instances built via from_spectrum.
        return {
            "kind": "copula",
            "correlation": self._corr.tolist(),
            "marginal": self._marginal,
            "target_std": self._target_std,
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "GaussianCopulaGenerator":
        check_spec(
            spec,
            "copula",
            optional=(
                "correlation",
                "spectrum",
                "basis_seed",
                "marginal",
                "target_std",
            ),
        )
        has_corr = "correlation" in spec
        has_spectrum = "spectrum" in spec
        if has_corr == has_spectrum:
            raise ValidationError(
                "copula spec needs exactly one of 'correlation' and "
                "'spectrum'"
            )
        marginal = spec.get("marginal", "normal")
        target_std = float(spec.get("target_std", 1.0))
        if has_corr:
            if "basis_seed" in spec:
                raise ValidationError(
                    "'basis_seed' only applies to spectrum-based copula "
                    "specs"
                )
            return cls(
                np.asarray(spec["correlation"], dtype=np.float64),
                marginal=marginal,
                target_std=target_std,
            )
        return cls.from_spectrum(
            np.asarray(spec["spectrum"], dtype=np.float64),
            marginal=marginal,
            target_std=target_std,
            rng=int(spec.get("basis_seed", 0)),
        )

    def sample(self, n_records: int, rng=None) -> np.ndarray:
        """Draw ``n_records`` rows, shape ``(n_records, m)``.

        Every attribute has mean ~0 and standard deviation
        ``target_std`` exactly in population (standardization constants
        are analytic, not estimated from the draw).
        """
        n = check_positive_int(n_records, "n_records")
        generator = as_generator(rng)
        latent = self._latent.sample(n, generator)
        if self._marginal == "normal":
            return latent * self._target_std
        uniforms = ndtr(latent)
        # Clip away exact 0/1 from floating point so inverse CDFs stay
        # finite.
        uniforms = np.clip(uniforms, 1e-12, 1.0 - 1e-12)
        raw = self._inverse_cdf(uniforms)
        mean, std = self._marginal_moments()
        return (raw - mean) / std * self._target_std

    # ------------------------------------------------------------------
    def _inverse_cdf(self, u: np.ndarray) -> np.ndarray:
        if self._marginal == "uniform":
            return u
        if self._marginal == "lognormal":
            return np.exp(_LOGNORMAL_SHAPE * ndtri(u))
        # bimodal: numeric inverse of the mixture CDF on a fine grid.
        grid, cdf = _bimodal_cdf_grid()
        return np.interp(u, cdf, grid)

    def _marginal_moments(self) -> tuple[float, float]:
        """Analytic (mean, std) of the un-standardized marginal."""
        if self._marginal == "uniform":
            return 0.5, math.sqrt(1.0 / 12.0)
        if self._marginal == "lognormal":
            s2 = _LOGNORMAL_SHAPE**2
            mean = math.exp(s2 / 2.0)
            variance = (math.exp(s2) - 1.0) * math.exp(s2)
            return mean, math.sqrt(variance)
        # bimodal, symmetric around zero:
        variance = _BIMODAL_STD**2 + _BIMODAL_DELTA**2
        return 0.0, math.sqrt(variance)

    def __repr__(self) -> str:
        return (
            f"GaussianCopulaGenerator(m={self.n_attributes}, "
            f"marginal={self._marginal!r})"
        )


def _bimodal_cdf_grid(n_points: int = 4001) -> tuple[np.ndarray, np.ndarray]:
    """Grid and CDF of the balanced two-mode Gaussian mixture."""
    span = _BIMODAL_DELTA + 6.0 * _BIMODAL_STD
    grid = np.linspace(-span, span, n_points)
    cdf = 0.5 * ndtr((grid + _BIMODAL_DELTA) / _BIMODAL_STD) + 0.5 * ndtr(
        (grid - _BIMODAL_DELTA) / _BIMODAL_STD
    )
    # Strictly increasing for interpolation.
    cdf = np.clip(cdf, 0.0, 1.0)
    return grid, cdf
