"""A census/medical-style correlated tabular generator.

The paper motivates the attack with databases of personal records (the
medical-database example in Section 3).  Real microdata cannot ship with
the library, so this generator produces a table whose attributes have the
kind of strong, structured correlations the paper says are dangerous:
demographic and clinical measurements driven by shared latent factors.

The table is numeric (the randomization scheme under study is additive),
column-named, and comes with the exact population covariance implied by
its structural equations, which lets examples compare estimated vs true
covariance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.registry import check_spec, register_dataset
from repro.utils.rng import as_generator
from repro.utils.serialization import values_equal
from repro.utils.validation import check_positive_int

__all__ = ["CensusLikeGenerator"]

# Structural model: every attribute = mean + loadings . latent + noise_std*eps
# Latent factors: age_f, wealth_f, health_f (standard normal, independent).
_COLUMNS = (
    # name,               mean,   loadings (age, wealth, health), noise_std
    ("age",               45.0,  (12.0,  0.0,   0.0),             2.0),
    ("years_employed",    20.0,  (9.0,   1.5,   0.0),             3.0),
    ("income",            58.0,  (6.0,   18.0,  0.0),             6.0),
    ("home_value",        240.0, (20.0,  75.0,  0.0),             25.0),
    ("savings",           85.0,  (15.0,  40.0,  0.0),             12.0),
    ("systolic_bp",       125.0, (8.0,   0.0,  -9.0),             4.0),
    ("cholesterol",       195.0, (10.0,  0.0,  -14.0),            8.0),
    ("bmi",               26.0,  (1.5,   0.0,  -3.5),             1.2),
    ("glucose",           98.0,  (4.0,   0.0,  -8.0),             3.0),
    ("exercise_hours",    4.0,   (-0.8,  0.3,   1.8),             0.7),
)


@dataclass(frozen=True, eq=False)
class CensusTable:
    """A generated table with its schema and population moments."""

    values: np.ndarray
    column_names: tuple[str, ...]
    population_mean: np.ndarray
    population_covariance: np.ndarray

    def __eq__(self, other) -> bool:
        # Array-aware: the generated __eq__ would raise on the ndarrays.
        if not isinstance(other, CensusTable):
            return NotImplemented
        return (
            values_equal(self.values, other.values)
            and self.column_names == other.column_names
            and values_equal(self.population_mean, other.population_mean)
            and values_equal(
                self.population_covariance, other.population_covariance
            )
        )

    @property
    def n_records(self) -> int:
        """Number of rows."""
        return int(self.values.shape[0])

    @property
    def n_attributes(self) -> int:
        """Number of columns."""
        return int(self.values.shape[1])

    def column(self, name: str) -> np.ndarray:
        """Values of a named column."""
        try:
            index = self.column_names.index(name)
        except ValueError:
            raise KeyError(
                f"unknown column {name!r}; available: {self.column_names}"
            ) from None
        return self.values[:, index].copy()


@register_dataset("census")
class CensusLikeGenerator:
    """Generator of correlated demographic/clinical records.

    Ten numeric attributes are driven by three latent factors (age,
    wealth, health), yielding a covariance with a clear principal
    subspace of dimension ~3 — the precise regime in which the paper's
    attacks excel.

    Parameters
    ----------
    scale:
        Multiplies every loading and noise, preserving correlations while
        changing units.
    """

    def __init__(self, *, scale: float = 1.0):
        if scale <= 0.0:
            raise ValueError(f"scale must be positive, got {scale}")
        self._scale = float(scale)
        self._means = np.array([row[1] for row in _COLUMNS])
        self._loadings = np.array([row[2] for row in _COLUMNS]) * self._scale
        self._noise_stds = np.array([row[3] for row in _COLUMNS]) * self._scale

    def to_spec(self) -> dict:
        return {"kind": "census", "scale": self._scale}

    @classmethod
    def from_spec(cls, spec: dict) -> "CensusLikeGenerator":
        check_spec(spec, "census", optional=("scale",))
        return cls(scale=float(spec.get("scale", 1.0)))

    @property
    def column_names(self) -> tuple[str, ...]:
        """Schema of the generated table."""
        return tuple(row[0] for row in _COLUMNS)

    @property
    def n_attributes(self) -> int:
        """Number of generated attributes."""
        return len(_COLUMNS)

    @property
    def population_covariance(self) -> np.ndarray:
        """Exact covariance ``L L^T + diag(noise^2)`` of the model."""
        cov = self._loadings @ self._loadings.T + np.diag(
            self._noise_stds**2
        )
        return (cov + cov.T) / 2.0

    @property
    def population_mean(self) -> np.ndarray:
        """Exact mean vector of the model."""
        return self._means.copy()

    def sample(self, n_records: int, rng=None) -> CensusTable:
        """Draw ``n_records`` rows, shape ``(n_records, 10)``."""
        n = check_positive_int(n_records, "n_records")
        generator = as_generator(rng)
        latent = generator.standard_normal((n, self._loadings.shape[1]))
        idiosyncratic = generator.standard_normal((n, self.n_attributes))
        values = (
            self._means
            + latent @ self._loadings.T
            + idiosyncratic * self._noise_stds
        )
        return CensusTable(
            values=values,
            column_names=self.column_names,
            population_mean=self.population_mean,
            population_covariance=self.population_covariance,
        )

    def __repr__(self) -> str:
        return f"CensusLikeGenerator(scale={self._scale:g})"
