"""Synthetic dataset generation (Section 7.1 steps 4-5, minus the noise).

:func:`generate_dataset` draws an original data table ``X`` from a
:class:`~repro.data.covariance_builder.CovarianceModel`.  Noise addition
is the randomization scheme's job (:mod:`repro.randomization`), keeping
generation and disguise independent, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.covariance_builder import CovarianceModel
from repro.exceptions import ValidationError
from repro.registry import check_spec, register_dataset
from repro.stats.mvn import MultivariateNormal
from repro.utils.rng import as_generator
from repro.utils.serialization import values_equal
from repro.utils.validation import check_positive_int, check_vector

__all__ = [
    "SyntheticDataset",
    "SpectrumDatasetGenerator",
    "generate_dataset",
]


@dataclass(frozen=True, eq=False)
class SyntheticDataset:
    """An original data table together with its generating model.

    Attributes
    ----------
    values:
        The original data ``X``, shape ``(n, m)`` — the private table the
        adversary tries to reconstruct.
    covariance_model:
        The population covariance the rows were drawn from.  Attacks must
        not read this directly (they estimate it via Theorem 5.1); it is
        exposed for oracle ablations and noise design.
    mean:
        Population mean vector used for generation.
    """

    values: np.ndarray
    covariance_model: CovarianceModel
    mean: np.ndarray

    def __eq__(self, other) -> bool:
        # Array-aware: the generated __eq__ would raise on the ndarrays.
        if not isinstance(other, SyntheticDataset):
            return NotImplemented
        return (
            values_equal(self.values, other.values)
            and self.covariance_model == other.covariance_model
            and values_equal(self.mean, other.mean)
        )

    @property
    def n_records(self) -> int:
        """Number of rows ``n``."""
        return int(self.values.shape[0])

    @property
    def n_attributes(self) -> int:
        """Number of columns ``m``."""
        return int(self.values.shape[1])

    @property
    def population_covariance(self) -> np.ndarray:
        """Covariance matrix the data were sampled from."""
        return self.covariance_model.matrix

    def __repr__(self) -> str:
        return (
            f"SyntheticDataset(n={self.n_records}, m={self.n_attributes})"
        )


def generate_dataset(
    covariance_model: CovarianceModel | None = None,
    *,
    n_records: int,
    spectrum=None,
    mean=None,
    rng=None,
) -> SyntheticDataset:
    """Draw an original data table from a covariance model.

    Either pass a prebuilt ``covariance_model`` or a raw ``spectrum``
    (eigenvalues), in which case a random Gram-Schmidt eigenbasis is drawn
    first — exactly the paper's generation pipeline.

    Parameters
    ----------
    covariance_model:
        Covariance with known eigenstructure.  Mutually exclusive with
        ``spectrum``.
    n_records:
        Number of rows to draw.
    spectrum:
        Eigenvalues used to build a fresh :class:`CovarianceModel`.
    mean:
        Population mean vector; defaults to zero (the paper works with
        zero-mean data, Section 5.1.1).
    rng:
        Seed or generator.  A single generator drives both the eigenbasis
        draw and the sampling, so one seed reproduces the whole dataset.

    Returns
    -------
    SyntheticDataset
    """
    n = check_positive_int(n_records, "n_records")
    generator = as_generator(rng)
    if (covariance_model is None) == (spectrum is None):
        raise ValidationError(
            "exactly one of 'covariance_model' and 'spectrum' must be given"
        )
    if covariance_model is None:
        covariance_model = CovarianceModel.from_spectrum(spectrum, generator)
    if mean is None:
        mean_vector = np.zeros(covariance_model.dim)
    else:
        mean_vector = check_vector(mean, "mean")
        if mean_vector.size != covariance_model.dim:
            raise ValidationError(
                f"mean has length {mean_vector.size}, expected "
                f"{covariance_model.dim}"
            )
    distribution = MultivariateNormal(mean_vector, covariance_model.matrix)
    values = distribution.sample(n, generator)
    return SyntheticDataset(
        values=values,
        covariance_model=covariance_model,
        mean=mean_vector,
    )


@register_dataset("synthetic")
class SpectrumDatasetGenerator:
    """Spec-constructible wrapper around :func:`generate_dataset`.

    Holds the population description (eigenvalue spectrum and optional
    mean); every :meth:`sample` call draws a fresh random eigenbasis and
    a fresh table from the provided generator — exactly the paper's
    Section 7.1 per-trial pipeline, and exactly what the figure tasks do
    inline.

    Parameters
    ----------
    spectrum:
        Eigenvalues of the population covariance, descending.
    mean:
        Optional population mean vector (defaults to zero).
    """

    def __init__(self, spectrum, *, mean=None):
        self._spectrum = check_vector(spectrum, "spectrum")
        if self._spectrum.size < 1:
            raise ValidationError("'spectrum' must be non-empty")
        self._mean = None if mean is None else check_vector(mean, "mean")
        if self._mean is not None and self._mean.size != self._spectrum.size:
            raise ValidationError(
                f"mean has length {self._mean.size}, spectrum has "
                f"{self._spectrum.size}"
            )

    @property
    def n_attributes(self) -> int:
        """Number of generated attributes."""
        return int(self._spectrum.size)

    @property
    def spectrum(self) -> np.ndarray:
        """Population eigenvalues (copy)."""
        return self._spectrum.copy()

    def sample(self, n_records: int, rng=None) -> SyntheticDataset:
        """Draw a fresh eigenbasis and table (Section 7.1 steps 2-5)."""
        return generate_dataset(
            spectrum=self._spectrum,
            n_records=n_records,
            mean=self._mean,
            rng=rng,
        )

    def to_spec(self) -> dict:
        spec: dict = {"kind": "synthetic", "spectrum": self._spectrum.tolist()}
        if self._mean is not None:
            spec["mean"] = self._mean.tolist()
        return spec

    @classmethod
    def from_spec(cls, spec: dict) -> "SpectrumDatasetGenerator":
        check_spec(spec, "synthetic", required=("spectrum",), optional=("mean",))
        return cls(spec["spectrum"], mean=spec.get("mean"))

    def __repr__(self) -> str:
        return f"SpectrumDatasetGenerator(m={self.n_attributes})"
