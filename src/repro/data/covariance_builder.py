"""Covariance construction from an eigen-spectrum (Section 7.1 steps 1-3).

The paper controls data correlations by *choosing* the eigenvalues,
drawing an orthonormal eigenbasis with Gram-Schmidt, and assembling
``C = Q diag(lambda) Q^T``.  :class:`CovarianceModel` packages the triple
``(lambda, Q, C)`` so experiments can reuse the same eigenvectors when
designing correlated noise (Section 8.2 fixes the noise eigenvectors to
the data's and only varies the noise eigenvalues).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SpectrumError, ValidationError
from repro.linalg.eigen import sorted_eigh
from repro.linalg.gram_schmidt import is_orthonormal, random_orthogonal
from repro.utils.serialization import values_equal
from repro.utils.validation import check_matrix, check_symmetric, check_vector

__all__ = ["CovarianceModel"]


@dataclass(frozen=True, eq=False)
class CovarianceModel:
    """A covariance matrix with its known eigenstructure.

    Attributes
    ----------
    eigenvalues:
        Spectrum sorted descending, shape ``(m,)``.
    eigenvectors:
        Orthonormal columns matching the eigenvalues, shape ``(m, m)``.
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    _matrix_cache: list = field(
        default_factory=list, repr=False, compare=False
    )

    def __post_init__(self):
        values = check_vector(self.eigenvalues, "eigenvalues")
        if np.any(values < 0.0):
            raise SpectrumError("eigenvalues must be non-negative")
        if np.any(np.diff(values) > 1e-9):
            raise SpectrumError("eigenvalues must be sorted descending")
        vectors = check_matrix(self.eigenvectors, "eigenvectors")
        if vectors.shape != (values.size, values.size):
            raise ValidationError(
                f"eigenvectors have shape {vectors.shape}, expected "
                f"({values.size}, {values.size})"
            )
        if not is_orthonormal(vectors, atol=1e-6):
            raise ValidationError("eigenvectors are not orthonormal")
        object.__setattr__(self, "eigenvalues", values)
        object.__setattr__(self, "eigenvectors", vectors)

    def __eq__(self, other) -> bool:
        # Array-aware: the generated __eq__ would raise on the ndarray
        # fields (the _matrix_cache is derived state and is excluded).
        if not isinstance(other, CovarianceModel):
            return NotImplemented
        return values_equal(
            self.eigenvalues, other.eigenvalues
        ) and values_equal(self.eigenvectors, other.eigenvectors)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_spectrum(cls, spectrum, rng=None) -> "CovarianceModel":
        """Build from eigenvalues with a random Gram-Schmidt eigenbasis.

        This is the paper's generation procedure (Section 7.1, steps 1-3).
        """
        values = np.sort(check_vector(spectrum, "spectrum"))[::-1]
        basis = random_orthogonal(values.size, rng)
        return cls(eigenvalues=values, eigenvectors=basis)

    @classmethod
    def from_matrix(cls, covariance) -> "CovarianceModel":
        """Recover the eigenstructure of an existing covariance matrix."""
        sym = check_symmetric(covariance, "covariance")
        decomposition = sorted_eigh(sym)
        values = np.clip(decomposition.values, 0.0, None)
        return cls(eigenvalues=values, eigenvectors=decomposition.vectors)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Number of attributes ``m``."""
        return int(self.eigenvalues.size)

    @property
    def trace(self) -> float:
        """Total variance ``sum(lambda_i)`` (Eq. 12)."""
        return float(self.eigenvalues.sum())

    @property
    def matrix(self) -> np.ndarray:
        """The covariance matrix ``Q diag(lambda) Q^T`` (cached)."""
        if not self._matrix_cache:
            product = (
                self.eigenvectors * self.eigenvalues
            ) @ self.eigenvectors.T
            self._matrix_cache.append((product + product.T) / 2.0)
        return self._matrix_cache[0].copy()

    # ------------------------------------------------------------------
    # Derived models
    # ------------------------------------------------------------------
    def with_spectrum(self, spectrum) -> "CovarianceModel":
        """Same eigenvectors, different eigenvalues.

        Section 8.2: "we fix the eigenvectors of the noises to be the same
        as those of the original data, and we then change the values of
        the eigenvalues."
        """
        values = check_vector(spectrum, "spectrum")
        if values.size != self.dim:
            raise ValidationError(
                f"spectrum has length {values.size}, expected {self.dim}"
            )
        order = np.argsort(values)[::-1]
        return CovarianceModel(
            eigenvalues=values[order],
            eigenvectors=self.eigenvectors[:, order],
        )

    def scaled(self, factor: float) -> "CovarianceModel":
        """Covariance scaled by a positive factor (same correlations)."""
        if factor <= 0.0:
            raise ValidationError(f"factor must be positive, got {factor}")
        return CovarianceModel(
            eigenvalues=self.eigenvalues * factor,
            eigenvectors=self.eigenvectors,
        )

    def __repr__(self) -> str:
        return (
            f"CovarianceModel(dim={self.dim}, trace={self.trace:.4g}, "
            f"top={float(self.eigenvalues[0]):.4g})"
        )
