"""Core orchestration: threat models, attack pipelines, noise design.

This layer ties the substrates together the way the paper's experiments
do: generate data, disguise it, run a battery of attacks, score the
reconstructions — plus the Section 8 defense that designs correlated
noise to a target similarity with the data.
"""

from repro.core.defense import NoiseDesigner, design_noise_spectrum
from repro.core.pipeline import (
    AttackOutcome,
    AttackPipeline,
    PipelineReport,
    evaluate_attacks,
)
from repro.core.threat_model import ThreatModel

__all__ = [
    "NoiseDesigner",
    "design_noise_spectrum",
    "AttackOutcome",
    "AttackPipeline",
    "PipelineReport",
    "evaluate_attacks",
    "ThreatModel",
]
