"""End-to-end attack pipeline: generate, disguise, attack, score.

This is the paper's experimental loop (Section 7.1) as a reusable
object.  Each run produces a :class:`PipelineReport` holding every
attack's reconstruction error, which the experiment runners aggregate
into the figures' series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.synthetic import SyntheticDataset
from repro.exceptions import ConfigurationError
from repro.metrics.error import per_attribute_rmse, root_mean_square_error
from repro.randomization.base import DisguisedDataset, RandomizationScheme
from repro.reconstruction.base import ReconstructionResult, Reconstructor
from repro.utils.rng import as_generator

__all__ = ["AttackOutcome", "PipelineReport", "evaluate_attacks", "AttackPipeline"]


@dataclass(frozen=True)
class AttackOutcome:
    """One attack's performance on one disguised dataset.

    Attributes
    ----------
    name:
        Attack label (the key used in the attack battery).
    rmse:
        Root mean square reconstruction error — the paper's privacy
        number (lower = less privacy).
    attribute_rmse:
        Per-attribute breakdown, shape ``(m,)``.
    result:
        The full :class:`ReconstructionResult` with method diagnostics.
    """

    name: str
    rmse: float
    attribute_rmse: np.ndarray
    result: ReconstructionResult


@dataclass(frozen=True)
class PipelineReport:
    """All attack outcomes for one generated-and-disguised dataset."""

    outcomes: dict[str, AttackOutcome]
    dataset: DisguisedDataset
    metadata: dict = field(default_factory=dict)

    def rmse(self, name: str) -> float:
        """RMSE of a named attack."""
        try:
            return self.outcomes[name].rmse
        except KeyError:
            raise KeyError(
                f"no attack named {name!r}; available: "
                f"{sorted(self.outcomes)}"
            ) from None

    @property
    def ranking(self) -> list[str]:
        """Attack names sorted from most to least accurate."""
        return sorted(self.outcomes, key=lambda name: self.outcomes[name].rmse)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={outcome.rmse:.3f}"
            for name, outcome in sorted(self.outcomes.items())
        )
        return f"PipelineReport({parts})"


def evaluate_attacks(
    dataset: DisguisedDataset,
    attacks: dict[str, Reconstructor],
) -> dict[str, AttackOutcome]:
    """Run every attack on a disguised dataset and score it.

    Attacks see only the public view; scoring uses the private original.
    """
    if not attacks:
        raise ConfigurationError("'attacks' must contain at least one attack")
    outcomes: dict[str, AttackOutcome] = {}
    for name, reconstructor in attacks.items():
        result = reconstructor.reconstruct(dataset)
        outcomes[name] = AttackOutcome(
            name=name,
            rmse=root_mean_square_error(dataset.original, result),
            attribute_rmse=per_attribute_rmse(dataset.original, result),
            result=result,
        )
    return outcomes


class AttackPipeline:
    """Reusable generate-disguise-attack-score loop.

    Parameters
    ----------
    scheme:
        The randomization scheme under evaluation.
    attacks:
        Name-to-reconstructor battery (e.g. from
        :meth:`~repro.core.threat_model.ThreatModel.build_attacks`).
    """

    def __init__(
        self,
        scheme: RandomizationScheme,
        attacks: dict[str, Reconstructor],
    ):
        if not isinstance(scheme, RandomizationScheme):
            raise ConfigurationError(
                "scheme must be a RandomizationScheme, got "
                f"{type(scheme).__name__}"
            )
        if not attacks:
            raise ConfigurationError("'attacks' must be non-empty")
        for name, attack in attacks.items():
            if not isinstance(attack, Reconstructor):
                raise ConfigurationError(
                    f"attack {name!r} is not a Reconstructor"
                )
        self._scheme = scheme
        self._attacks = dict(attacks)

    @property
    def scheme(self) -> RandomizationScheme:
        """The randomization scheme under evaluation."""
        return self._scheme

    @property
    def attack_names(self) -> list[str]:
        """Names of the configured attacks."""
        return list(self._attacks)

    def run(self, original, rng=None, metadata=None) -> PipelineReport:
        """Disguise an original table and evaluate every attack on it.

        Parameters
        ----------
        original:
            The private table — a raw ``(n, m)`` matrix or a
            :class:`~repro.data.synthetic.SyntheticDataset`.
        rng:
            Seed or generator for the noise draw.
        metadata:
            Optional sweep-point annotations copied into the report.
        """
        if isinstance(original, SyntheticDataset):
            table = original.values
        else:
            table = original
        generator = as_generator(rng)
        disguised = self._scheme.disguise(table, generator)
        outcomes = evaluate_attacks(disguised, self._attacks)
        return PipelineReport(
            outcomes=outcomes,
            dataset=disguised,
            metadata=dict(metadata or {}),
        )

    def __repr__(self) -> str:
        return (
            f"AttackPipeline(scheme={self._scheme!r}, "
            f"attacks={self.attack_names})"
        )
