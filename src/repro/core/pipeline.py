"""End-to-end attack pipeline: generate, disguise, attack, score.

This is the paper's experimental loop (Section 7.1) as a reusable
object.  Each run produces a :class:`PipelineReport` holding every
attack's reconstruction error, which the experiment runners aggregate
into the figures' series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.synthetic import SyntheticDataset
from repro.exceptions import ConfigurationError
from repro.metrics.error import per_attribute_rmse, root_mean_square_error
from repro.randomization.base import DisguisedDataset, NoiseModel, RandomizationScheme
from repro.reconstruction.base import ReconstructionResult, Reconstructor
from repro.telemetry import trace
from repro.utils.rng import as_generator
from repro.utils.serialization import (
    restore_from_json,
    sanitize_for_json,
    values_equal,
)

__all__ = ["AttackOutcome", "PipelineReport", "evaluate_attacks", "AttackPipeline"]


@dataclass(frozen=True, eq=False)
class AttackOutcome:
    """One attack's performance on one disguised dataset.

    Attributes
    ----------
    name:
        Attack label (the key used in the attack battery).
    rmse:
        Root mean square reconstruction error — the paper's privacy
        number (lower = less privacy).  ``nan`` for a failed attack.
    attribute_rmse:
        Per-attribute breakdown, shape ``(m,)`` (all-``nan`` on failure).
    result:
        The full :class:`ReconstructionResult` with method diagnostics,
        or ``None`` when the attack raised.
    error:
        ``None`` on success; otherwise ``"ExceptionType: message"`` for
        the exception the attack raised (recorded instead of aborting
        when :func:`evaluate_attacks` runs with ``fail_fast=False``).
    """

    name: str
    rmse: float
    attribute_rmse: np.ndarray
    result: ReconstructionResult | None
    error: str | None = None

    @property
    def failed(self) -> bool:
        """True when the attack raised instead of reconstructing."""
        return self.error is not None

    def __eq__(self, other) -> bool:
        # dataclass equality would compare the rmse/attribute_rmse
        # arrays with ``==`` (ambiguous truth value) and treat the nan
        # of a failed attack as unequal to itself; compare element-wise
        # and nan-aware instead, so round-tripped outcomes are equal.
        if not isinstance(other, AttackOutcome):
            return NotImplemented
        return (
            self.name == other.name
            and self.error == other.error
            and values_equal(self.rmse, other.rmse)
            and values_equal(self.attribute_rmse, other.attribute_rmse)
            and self.result == other.result
        )

    def to_dict(self, *, include_estimate: bool = True) -> dict:
        """JSON-safe encoding (nan-aware), invertible by :meth:`from_dict`.

        ``include_estimate=False`` drops the full ``(n, m)``
        reconstruction matrix, keeping only the scores — the compact
        form sweeps persist.
        """
        result = None
        if self.result is not None:
            result = {
                "method": self.result.method,
                "details": sanitize_for_json(self.result.details),
                "estimate": (
                    sanitize_for_json(self.result.estimate)
                    if include_estimate
                    else None
                ),
            }
        return {
            "name": self.name,
            "rmse": sanitize_for_json(float(self.rmse)),
            "attribute_rmse": sanitize_for_json(self.attribute_rmse),
            "error": self.error,
            "result": result,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AttackOutcome":
        """Rebuild an outcome from :meth:`to_dict` output.

        Outcomes saved with ``include_estimate=False`` come back with
        ``result=None`` (the scores survive; the matrix was dropped).
        """
        encoded = payload.get("result")
        result = None
        if encoded is not None and encoded.get("estimate") is not None:
            result = ReconstructionResult(
                estimate=np.asarray(
                    restore_from_json(encoded["estimate"]), dtype=np.float64
                ),
                method=encoded["method"],
                details=restore_from_json(encoded.get("details", {})),
            )
        return cls(
            name=payload["name"],
            rmse=float(restore_from_json(payload["rmse"])),
            attribute_rmse=np.asarray(
                restore_from_json(payload["attribute_rmse"]),
                dtype=np.float64,
            ),
            result=result,
            error=payload.get("error"),
        )


@dataclass(frozen=True, eq=False)
class PipelineReport:
    """All attack outcomes for one generated-and-disguised dataset.

    ``dataset`` holds the full disguised/original/noise matrices for a
    live report; a report deserialized with ``include_dataset=False``
    carries ``dataset=None`` (scores only).
    """

    outcomes: dict[str, AttackOutcome]
    dataset: DisguisedDataset | None
    metadata: dict = field(default_factory=dict)

    def __eq__(self, other) -> bool:
        if not isinstance(other, PipelineReport):
            return NotImplemented
        return (
            self.outcomes == other.outcomes
            and self.dataset == other.dataset
            and values_equal(self.metadata, other.metadata)
        )

    def rmse(self, name: str) -> float:
        """RMSE of a named attack."""
        try:
            return self.outcomes[name].rmse
        except KeyError:
            raise KeyError(
                f"no attack named {name!r}; available: "
                f"{sorted(self.outcomes)}"
            ) from None

    @property
    def ranking(self) -> list[str]:
        """Successful attack names sorted from most to least accurate."""
        return sorted(
            (
                name
                for name, outcome in self.outcomes.items()
                if not outcome.failed
            ),
            key=lambda name: self.outcomes[name].rmse,
        )

    @property
    def failures(self) -> dict[str, str]:
        """Failed attack names mapped to their recorded error strings."""
        return {
            name: outcome.error
            for name, outcome in self.outcomes.items()
            if outcome.failed
        }

    def to_dict(
        self,
        *,
        include_dataset: bool = True,
        include_estimates: bool = True,
    ) -> dict:
        """Strict-JSON encoding of the whole report (nan-safe).

        The payload survives ``json.dumps(..., allow_nan=False)`` — the
        same encoding the engine's result cache enforces — and
        :meth:`from_dict` inverts it bit-for-bit.  Set the two flags to
        ``False`` for the compact scores-only form (no ``(n, m)``
        matrices), e.g. when persisting large sweeps.
        """
        dataset = None
        if include_dataset and self.dataset is not None:
            model = self.dataset.noise_model
            dataset = {
                "disguised": sanitize_for_json(self.dataset.disguised),
                "original": sanitize_for_json(self.dataset.original),
                "noise": sanitize_for_json(self.dataset.noise),
                "noise_model": {
                    "covariance": sanitize_for_json(model.covariance),
                    "mean": sanitize_for_json(model.mean),
                    "family": model.family,
                },
            }
        return {
            "outcomes": {
                name: outcome.to_dict(include_estimate=include_estimates)
                for name, outcome in self.outcomes.items()
            },
            "dataset": dataset,
            "metadata": sanitize_for_json(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PipelineReport":
        """Rebuild a report from :meth:`to_dict` output."""
        encoded = payload.get("dataset")
        dataset = None
        if encoded is not None:
            model = encoded["noise_model"]
            dataset = DisguisedDataset(
                disguised=np.asarray(
                    restore_from_json(encoded["disguised"]), dtype=np.float64
                ),
                noise_model=NoiseModel(
                    covariance=np.asarray(
                        restore_from_json(model["covariance"]),
                        dtype=np.float64,
                    ),
                    mean=np.asarray(
                        restore_from_json(model["mean"]), dtype=np.float64
                    ),
                    family=model["family"],
                ),
                original=np.asarray(
                    restore_from_json(encoded["original"]), dtype=np.float64
                ),
                noise=np.asarray(
                    restore_from_json(encoded["noise"]), dtype=np.float64
                ),
            )
        return cls(
            outcomes={
                name: AttackOutcome.from_dict(outcome)
                for name, outcome in payload["outcomes"].items()
            },
            dataset=dataset,
            metadata=restore_from_json(payload.get("metadata", {})),
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={outcome.rmse:.3f}"
            for name, outcome in sorted(self.outcomes.items())
        )
        return f"PipelineReport({parts})"


def evaluate_attacks(
    dataset: DisguisedDataset,
    attacks: dict[str, Reconstructor],
    *,
    fail_fast: bool = True,
) -> dict[str, AttackOutcome]:
    """Run every attack on a disguised dataset and score it.

    Attacks see only the public view; scoring uses the private original.

    With ``fail_fast=False``, an attack that raises does not abort the
    evaluation: its exception is recorded on the outcome (``error`` set,
    ``rmse`` nan) and the remaining attacks still run, so one fragile
    method cannot kill a whole sweep.
    """
    if not attacks:
        raise ConfigurationError("'attacks' must contain at least one attack")
    outcomes: dict[str, AttackOutcome] = {}
    for name, reconstructor in attacks.items():
        try:
            with trace.span(
                "pipeline.attack", attack=name, method=type(reconstructor).__name__
            ):
                result = reconstructor.reconstruct(dataset)
        except Exception as exc:
            if fail_fast:
                raise
            trace.count("pipeline.attack_failures")
            outcomes[name] = AttackOutcome(
                name=name,
                rmse=float("nan"),
                attribute_rmse=np.full(dataset.n_attributes, np.nan),
                result=None,
                error=f"{type(exc).__name__}: {exc}",
            )
            continue
        with trace.span("pipeline.metrics", attack=name):
            outcomes[name] = AttackOutcome(
                name=name,
                rmse=root_mean_square_error(dataset.original, result),
                attribute_rmse=per_attribute_rmse(dataset.original, result),
                result=result,
            )
    return outcomes


class AttackPipeline:
    """Reusable generate-disguise-attack-score loop.

    Parameters
    ----------
    scheme:
        The randomization scheme under evaluation.
    attacks:
        Name-to-reconstructor battery (e.g. from
        :meth:`~repro.core.threat_model.ThreatModel.build_attacks`).
    """

    def __init__(
        self,
        scheme: RandomizationScheme,
        attacks: dict[str, Reconstructor],
    ):
        if not isinstance(scheme, RandomizationScheme):
            raise ConfigurationError(
                "scheme must be a RandomizationScheme, got "
                f"{type(scheme).__name__}"
            )
        if not attacks:
            raise ConfigurationError("'attacks' must be non-empty")
        for name, attack in attacks.items():
            if not isinstance(attack, Reconstructor):
                raise ConfigurationError(
                    f"attack {name!r} is not a Reconstructor"
                )
        self._scheme = scheme
        self._attacks = dict(attacks)

    @property
    def scheme(self) -> RandomizationScheme:
        """The randomization scheme under evaluation."""
        return self._scheme

    @property
    def attack_names(self) -> list[str]:
        """Names of the configured attacks."""
        return list(self._attacks)

    def run(
        self, original, rng=None, metadata=None, *, fail_fast: bool = True
    ) -> PipelineReport:
        """Disguise an original table and evaluate every attack on it.

        Parameters
        ----------
        original:
            The private table — a raw ``(n, m)`` matrix, a
            :class:`~repro.data.synthetic.SyntheticDataset`, or an
            already-disguised :class:`DisguisedDataset` (e.g. replayed
            from a previous run), in which case no new noise is drawn
            and the dataset's noise model must match this pipeline's
            scheme.
        rng:
            Seed or generator for the noise draw; ignored for a
            pre-disguised input.
        metadata:
            Optional sweep-point annotations copied into the report.
        fail_fast:
            Passed to :func:`evaluate_attacks`; ``False`` records
            per-attack exceptions in the report instead of raising.
        """
        with trace.span(
            "pipeline.run",
            scheme=type(self._scheme).__name__,
            attacks=len(self._attacks),
        ) as run_span:
            if isinstance(original, DisguisedDataset):
                disguised = self._validate_disguised(original)
            else:
                if isinstance(original, SyntheticDataset):
                    table = original.values
                else:
                    table = original
                generator = as_generator(rng)
                with trace.span("pipeline.randomize"):
                    disguised = self._scheme.disguise(table, generator)
            run_span.set(
                n_records=int(disguised.n_records),
                n_attributes=int(disguised.n_attributes),
            )
            trace.count("pipeline.records", int(disguised.n_records))
            outcomes = evaluate_attacks(
                disguised, self._attacks, fail_fast=fail_fast
            )
            return PipelineReport(
                outcomes=outcomes,
                dataset=disguised,
                metadata=dict(metadata or {}),
            )

    def _validate_disguised(self, dataset: DisguisedDataset) -> DisguisedDataset:
        """Check a pre-disguised input against the configured scheme."""
        announced = self._scheme.noise_model(dataset.n_attributes)
        model = dataset.noise_model
        if model.family != announced.family or not np.allclose(
            model.covariance, announced.covariance
        ):
            raise ConfigurationError(
                "pre-disguised dataset's noise model does not match this "
                f"pipeline's scheme {self._scheme!r}; evaluating attacks "
                "under a mismatched public noise description would be "
                "meaningless"
            )
        return dataset

    def __repr__(self) -> str:
        return (
            f"AttackPipeline(scheme={self._scheme!r}, "
            f"attacks={self.attack_names})"
        )
