"""Adversary-knowledge descriptions mapped to applicable attacks.

Section 3 catalogs the information sources that can break randomization:
attribute dependency, sample dependency, partial value disclosure, and
data-mining results.  A :class:`ThreatModel` states which of these an
adversary holds and assembles the matching attack battery, so examples
and the pipeline can express "an adversary who knows the noise
distribution and two leaked columns" declaratively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.reconstruction.base import Reconstructor
from repro.reconstruction.bedr import BayesEstimateReconstructor
from repro.reconstruction.kalman import KalmanSmootherReconstructor
from repro.reconstruction.ndr import NoiseDistributionReconstructor
from repro.reconstruction.partial_disclosure import (
    ConditionalDisclosureReconstructor,
)
from repro.reconstruction.pca_dr import PCAReconstructor
from repro.reconstruction.spectral_filtering import (
    SpectralFilteringReconstructor,
)
from repro.reconstruction.udr import UnivariateReconstructor
from repro.reconstruction.wiener import WienerSmootherReconstructor
from repro.registry import check_spec
from repro.utils.serialization import values_equal

__all__ = ["ThreatModel"]


@dataclass(frozen=True, eq=False)
class ThreatModel:
    """What the adversary knows beyond the published table.

    Attributes
    ----------
    exploits_correlations:
        Whether the adversary models cross-attribute correlation — the
        paper's central switch (UDR vs PCA-DR/BE-DR).
    exploits_serial_dependency:
        Whether records are ordered (time series) and the adversary
        smooths across them (Section 3's sample dependency).
    leaked_attributes:
        Indices of attributes whose exact values leaked via a side
        channel (Section 3's partial value disclosure).
    leaked_values:
        The leaked values, shape ``(n, len(leaked_attributes))``.
    udr_prior:
        Prior source for the univariate baseline (``"gaussian"`` or
        ``"reconstructed"``).
    """

    exploits_correlations: bool = True
    exploits_serial_dependency: bool = False
    leaked_attributes: tuple = ()
    leaked_values: object = None
    udr_prior: str = "gaussian"
    _extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self):
        has_indices = len(self.leaked_attributes) > 0
        has_values = self.leaked_values is not None
        if has_indices != has_values:
            raise ConfigurationError(
                "leaked_attributes and leaked_values must be given together"
            )

    def __eq__(self, other) -> bool:
        # leaked_values may be an ndarray; the generated equality would
        # raise the ambiguous-truth ValueError on it.
        if not isinstance(other, ThreatModel):
            return NotImplemented
        return (
            self.exploits_correlations == other.exploits_correlations
            and self.exploits_serial_dependency
            == other.exploits_serial_dependency
            and tuple(self.leaked_attributes) == tuple(other.leaked_attributes)
            and values_equal(self.leaked_values, other.leaked_values)
            and self.udr_prior == other.udr_prior
        )

    def __hash__(self) -> int:
        # Field-based, consistent with __eq__: equal models hash equal,
        # so ThreatModel works as a dict key / set member.  NaNs inside
        # leaked_values are replaced by a sentinel because values_equal
        # treats them as equal while hash(nan) is id-based on 3.10+.
        values_key = None
        if self.leaked_values is not None:
            array = np.asarray(self.leaked_values, dtype=np.float64)
            values_key = (
                array.shape,
                tuple(
                    "nan" if value != value else value
                    for value in array.ravel().tolist()
                ),
            )
        return hash(
            (
                self.exploits_correlations,
                self.exploits_serial_dependency,
                tuple(self.leaked_attributes),
                values_key,
                self.udr_prior,
            )
        )

    @property
    def has_leak(self) -> bool:
        """True when partial value disclosure is part of the model."""
        return len(self.leaked_attributes) > 0

    def build_attacks(self) -> dict[str, Reconstructor]:
        """Assemble the attack battery this adversary can mount.

        Returns a name-to-reconstructor mapping in escalating order of
        exploited knowledge: NDR and UDR always apply; the correlation
        attacks (SF, PCA-DR, BE-DR) require ``exploits_correlations``;
        the Wiener smoother requires serial dependency; the conditional
        attack requires a leak.
        """
        attacks: dict[str, Reconstructor] = {
            "NDR": NoiseDistributionReconstructor(),
            "UDR": UnivariateReconstructor(prior=self.udr_prior),
        }
        if self.exploits_correlations:
            attacks["SF"] = SpectralFilteringReconstructor()
            attacks["PCA-DR"] = PCAReconstructor()
            attacks["BE-DR"] = BayesEstimateReconstructor()
        if self.exploits_serial_dependency:
            attacks["Wiener"] = WienerSmootherReconstructor()
            attacks["Kalman"] = KalmanSmootherReconstructor()
        if self.has_leak:
            attacks["BE-DR+leak"] = ConditionalDisclosureReconstructor(
                np.asarray(self.leaked_attributes, dtype=np.intp),
                self.leaked_values,
            )
        return attacks

    def to_spec(self) -> dict:
        """JSON-safe description, invertible by :meth:`from_spec`."""
        spec: dict = {
            "kind": "threat_model",
            "exploits_correlations": self.exploits_correlations,
            "exploits_serial_dependency": self.exploits_serial_dependency,
            "udr_prior": self.udr_prior,
        }
        if self.has_leak:
            spec["leaked_attributes"] = [
                int(index) for index in self.leaked_attributes
            ]
            spec["leaked_values"] = np.asarray(
                self.leaked_values, dtype=np.float64
            ).tolist()
        return spec

    @classmethod
    def from_spec(cls, spec: dict) -> "ThreatModel":
        """Rebuild a threat model from its spec dict."""
        check_spec(
            spec,
            "threat_model",
            optional=(
                "exploits_correlations",
                "exploits_serial_dependency",
                "leaked_attributes",
                "leaked_values",
                "udr_prior",
            ),
        )
        leaked_values = spec.get("leaked_values")
        return cls(
            exploits_correlations=bool(
                spec.get("exploits_correlations", True)
            ),
            exploits_serial_dependency=bool(
                spec.get("exploits_serial_dependency", False)
            ),
            leaked_attributes=tuple(spec.get("leaked_attributes", ())),
            leaked_values=(
                None
                if leaked_values is None
                else np.asarray(leaked_values, dtype=np.float64)
            ),
            udr_prior=spec.get("udr_prior", "gaussian"),
        )

    def __repr__(self) -> str:
        flags = []
        if self.exploits_correlations:
            flags.append("correlations")
        if self.exploits_serial_dependency:
            flags.append("serial")
        if self.has_leak:
            flags.append(f"leak[{len(self.leaked_attributes)}]")
        return f"ThreatModel({', '.join(flags) or 'baseline'})"
