"""The paper's improved randomization scheme as a noise *designer*.

Section 8.2's construction: keep the noise eigenvectors equal to the
data's, fix the total noise power, and reshape only the noise eigenvalue
profile.  Sliding the profile from "proportional to the data's spectrum"
through "flat" to "reversed" traces out Figure 4's x-axis:

* **proportional** — the noise correlation matrix equals the data's;
  correlation dissimilarity 0; attacks cannot separate noise from signal.
* **flat** — all noise eigenvalues equal, i.e. covariance
  ``(power/m) * I``: *independent* noise, the vertical line in Figure 4.
* **reversed** — noise concentrates on the data's non-principal
  directions, correlations are maximally different, and PCA-style
  filtering becomes devastatingly effective.

:func:`design_noise_spectrum` interpolates that path with a single
``profile`` parameter in ``[0, 2]`` (0 = proportional, 1 = flat,
2 = reversed); :class:`NoiseDesigner` wraps it into ready-to-use
:class:`~repro.randomization.correlated.CorrelatedNoiseScheme` objects
and reports the achieved Definition-8.1 dissimilarity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.covariance_builder import CovarianceModel
from repro.exceptions import ValidationError
from repro.metrics.dissimilarity import correlation_dissimilarity
from repro.randomization.correlated import CorrelatedNoiseScheme
from repro.utils.validation import check_in_range

__all__ = ["design_noise_spectrum", "DesignedNoise", "NoiseDesigner"]


def design_noise_spectrum(
    data_eigenvalues,
    *,
    noise_power: float,
    profile: float,
) -> np.ndarray:
    """Noise eigenvalues along the proportional-flat-reversed path.

    Piecewise-linear interpolation in profile space:

    * ``profile in [0, 1]`` — between the data spectrum and a flat
      spectrum: ``(1 - t) * lambda_x + t * flat``.
    * ``profile in [1, 2]`` — between flat and the reversed data
      spectrum: ``(2 - t) * flat + (t - 1) * reversed(lambda_x)``.

    The result is rescaled so its sum equals ``noise_power``, keeping the
    total perturbation energy constant across the sweep (the paper holds
    the noise amount fixed while varying only its correlation shape).

    Parameters
    ----------
    data_eigenvalues:
        The data covariance spectrum, sorted descending.
    noise_power:
        Target trace of the noise covariance (``m * sigma^2`` to match an
        i.i.d. scheme of per-attribute variance ``sigma^2``).
    profile:
        Path position in ``[0, 2]``; 1 is exactly independent noise.

    Returns
    -------
    numpy.ndarray
        Noise eigenvalues aligned with the data eigenvector order (not
        re-sorted: entry ``k`` belongs to data eigenvector ``k``).
    """
    spectrum = np.asarray(data_eigenvalues, dtype=np.float64)
    if spectrum.ndim != 1 or spectrum.size == 0:
        raise ValidationError("'data_eigenvalues' must be a 1-D spectrum")
    if np.any(spectrum < 0.0):
        raise ValidationError("'data_eigenvalues' must be non-negative")
    power = check_in_range(
        noise_power, "noise_power", low=0.0, inclusive_low=False
    )
    t = check_in_range(profile, "profile", low=0.0, high=2.0)
    flat = np.full_like(spectrum, spectrum.mean())
    if t <= 1.0:
        raw = (1.0 - t) * spectrum + t * flat
    else:
        raw = (2.0 - t) * flat + (t - 1.0) * spectrum[::-1]
    total = float(raw.sum())
    if total <= 0.0:
        raise ValidationError("designed spectrum has zero energy")
    return raw * (power / total)


@dataclass(frozen=True)
class DesignedNoise:
    """A designed noise scheme plus its similarity diagnostics.

    Attributes
    ----------
    scheme:
        Ready-to-apply correlated-noise randomization scheme.
    profile:
        The path parameter that produced it.
    dissimilarity:
        Definition-8.1 correlation dissimilarity between the noise and
        the data covariance (population values, RMS convention).
    noise_model:
        The noise :class:`CovarianceModel` (data eigenvectors, designed
        eigenvalues).
    """

    scheme: CorrelatedNoiseScheme
    profile: float
    dissimilarity: float
    noise_model: CovarianceModel


class NoiseDesigner:
    """Designs Section-8 correlated noise against a given data covariance.

    Parameters
    ----------
    data_model:
        Eigenstructure of the data covariance the publisher wants to
        protect (the publisher owns the data, so the true covariance is
        available to the *defense* even though attackers must estimate
        it).
    noise_power:
        Total noise energy (trace); ``m * sigma^2`` reproduces the
        baseline scheme's power at ``profile = 1``.
    """

    def __init__(self, data_model: CovarianceModel, *, noise_power: float):
        if not isinstance(data_model, CovarianceModel):
            raise ValidationError(
                "data_model must be a CovarianceModel, got "
                f"{type(data_model).__name__}"
            )
        self._data_model = data_model
        self._noise_power = check_in_range(
            noise_power, "noise_power", low=0.0, inclusive_low=False
        )

    @property
    def data_model(self) -> CovarianceModel:
        """The protected data's covariance model."""
        return self._data_model

    @property
    def noise_power(self) -> float:
        """Total designed noise energy."""
        return self._noise_power

    def design(self, profile: float) -> DesignedNoise:
        """Build the noise scheme at one point of the similarity path."""
        spectrum = design_noise_spectrum(
            self._data_model.eigenvalues,
            noise_power=self._noise_power,
            profile=profile,
        )
        noise_model = self._data_model.with_spectrum(spectrum)
        dissimilarity = correlation_dissimilarity(
            self._data_model.matrix,
            noise_model.matrix,
            inputs="covariance",
        )
        return DesignedNoise(
            scheme=CorrelatedNoiseScheme(noise_model.matrix),
            profile=float(profile),
            dissimilarity=dissimilarity,
            noise_model=noise_model,
        )

    def sweep(self, profiles) -> list[DesignedNoise]:
        """Design a scheme at every profile value (Figure 4's sweep)."""
        return [self.design(float(t)) for t in np.asarray(profiles).ravel()]

    def __repr__(self) -> str:
        return (
            f"NoiseDesigner(m={self._data_model.dim}, "
            f"power={self._noise_power:g})"
        )
