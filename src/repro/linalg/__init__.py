"""Linear-algebra substrate used by the reconstruction attacks.

The paper's synthetic-data methodology (Section 7.1) builds covariance
matrices "in reverse": pick eigenvalues, build a random orthonormal basis
with Gram-Schmidt, and form ``C = Q diag(lambda) Q^T``.  This subpackage
provides that machinery plus the eigendecomposition, PSD-repair, and
covariance-estimation helpers the attacks rely on.
"""

from repro.linalg.covariance import (
    correlation_from_covariance,
    covariance_from_disguised,
    sample_covariance,
    sample_mean,
)
from repro.linalg.eigen import (
    EigenDecomposition,
    condition_number,
    eigen_gap_split,
    sorted_eigh,
    spectrum_energy_fraction,
)
from repro.linalg.gram_schmidt import gram_schmidt, is_orthonormal, random_orthogonal
from repro.linalg.psd import (
    cholesky_with_jitter,
    is_positive_semidefinite,
    nearest_psd,
    psd_inverse,
)

__all__ = [
    "correlation_from_covariance",
    "covariance_from_disguised",
    "sample_covariance",
    "sample_mean",
    "EigenDecomposition",
    "condition_number",
    "eigen_gap_split",
    "sorted_eigh",
    "spectrum_energy_fraction",
    "gram_schmidt",
    "is_orthonormal",
    "random_orthogonal",
    "cholesky_with_jitter",
    "is_positive_semidefinite",
    "nearest_psd",
    "psd_inverse",
]
