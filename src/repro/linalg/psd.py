"""Positive-semidefinite repair and PSD-aware factorizations.

Theorem 5.1 estimates the original covariance by subtracting ``sigma^2``
from the diagonal of a *sample* covariance.  For finite samples the result
routinely has small negative eigenvalues, which breaks the matrix inverse
in BE-DR (Eq. 11) and Cholesky-based sampling.  The paper does not discuss
this; any faithful implementation must repair the spectrum, and this
module centralizes that.

Because every repair is a numerical-health event, the module doubles as
the telemetry layer's condition probe: under tracing, :func:`psd_inverse`
and :func:`nearest_psd` publish ``linalg.*`` condition gauges and
clip/repair counters, and the :func:`cholesky_with_jitter` retry loop
feeds an :class:`~repro.telemetry.convergence.IterationTracker` (one
record per attempt, jitter as the delta) under a ``linalg.cholesky``
span.  All probes sit behind ``trace.enabled()``; the untraced paths
are arithmetic-identical to the uninstrumented originals.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotPositiveDefiniteError
from repro.linalg.eigen import condition_number, sorted_eigh
from repro.telemetry import trace
from repro.telemetry.convergence import NULL_TRACKER
from repro.utils.validation import check_in_range, check_symmetric

__all__ = [
    "is_positive_semidefinite",
    "nearest_psd",
    "cholesky_with_jitter",
    "psd_inverse",
]


def is_positive_semidefinite(matrix, *, tol: float = 1e-10) -> bool:
    """True when all eigenvalues of the symmetric ``matrix`` are ``>= -tol``.

    The tolerance is relative to the largest absolute eigenvalue so the
    check is scale-free.
    """
    sym = check_symmetric(matrix, "matrix")
    values = np.linalg.eigvalsh(sym)
    scale = max(float(np.max(np.abs(values))), 1.0)
    return bool(values.min() >= -tol * scale)


def nearest_psd(matrix, *, floor: float = 0.0) -> np.ndarray:
    """Project a symmetric matrix onto the PSD cone by spectral clipping.

    Eigenvalues below ``floor`` are raised to ``floor``; eigenvectors are
    kept.  With ``floor=0`` this is the Frobenius-nearest PSD matrix
    (Higham's projection for symmetric input).  A strictly positive floor
    yields a positive-*definite* result suitable for inversion.

    Parameters
    ----------
    matrix:
        Symmetric matrix, e.g. a Theorem-5.1 covariance estimate.
    floor:
        Minimum allowed eigenvalue; must be ``>= 0``.
    """
    check_in_range(floor, "floor", low=0.0)
    decomposition = sorted_eigh(matrix)
    clipped = np.clip(decomposition.values, floor, None)
    if np.array_equal(clipped, decomposition.values):
        # Already PSD with the requested floor: return the symmetrized input.
        return check_symmetric(matrix, "matrix")
    if trace.enabled():
        trace.count("linalg.nearest_psd.repairs")
        trace.gauge(
            "linalg.nearest_psd.condition",
            condition_number(decomposition.values),
        )
    vectors = decomposition.vectors
    repaired = (vectors * clipped) @ vectors.T
    return (repaired + repaired.T) / 2.0


def cholesky_with_jitter(
    matrix,
    *,
    initial_jitter: float = 1e-12,
    max_tries: int = 12,
) -> np.ndarray:
    """Cholesky factor of a (nearly) PSD matrix, adding diagonal jitter.

    Tries a plain Cholesky first; on failure adds ``jitter * mean(diag)``
    to the diagonal, multiplying the jitter by 10 each retry.  Raises
    :class:`NotPositiveDefiniteError` when the budget is exhausted, which
    signals the matrix is genuinely indefinite rather than borderline.

    Returns the lower-triangular ``L`` with ``L @ L.T ≈ matrix``.
    """
    sym = check_symmetric(matrix, "matrix")
    scale = float(np.mean(np.diag(sym)))
    if scale <= 0.0:
        scale = 1.0
    if not trace.enabled():
        return _cholesky_attempts(
            sym, scale, initial_jitter, max_tries, NULL_TRACKER
        )
    with trace.span("linalg.cholesky", dim=int(sym.shape[0])):
        tracker = trace.iterations("linalg.cholesky")
        try:
            factor = _cholesky_attempts(
                sym, scale, initial_jitter, max_tries, tracker
            )
        except NotPositiveDefiniteError:
            tracker.finish(converged=False)
            raise
        tracker.finish(converged=True)
        return factor


def _cholesky_attempts(
    sym: np.ndarray,
    scale: float,
    initial_jitter: float,
    max_tries: int,
    tracker,
) -> np.ndarray:
    """The retry loop behind :func:`cholesky_with_jitter`.

    ``tracker`` gets one record per attempt — the applied absolute
    jitter as the delta, failures as rejections — and stays the no-op
    singleton on the untraced path.
    """
    jitter = 0.0
    next_jitter = initial_jitter
    for _ in range(max_tries):
        applied = jitter * scale
        try:
            factor = np.linalg.cholesky(
                sym + applied * np.eye(sym.shape[0])
            )
        except np.linalg.LinAlgError:
            tracker.record(delta=applied, rejected=1)
            jitter = next_jitter
            next_jitter *= 10.0
        else:
            tracker.record(delta=applied)
            return factor
    raise NotPositiveDefiniteError(
        "matrix is not positive definite even after adding jitter up to "
        f"{jitter * scale:.3g}"
    )


def psd_inverse(matrix, *, floor: float = 1e-10) -> np.ndarray:
    """Stable inverse of a symmetric PSD matrix via spectral clipping.

    Eigenvalues are floored at ``floor * max(eigenvalue)`` before
    inverting, so near-singular covariance estimates (common after the
    Theorem-5.1 diagonal subtraction) produce a bounded inverse instead of
    exploding.  For well-conditioned input this equals ``inv(matrix)`` to
    machine precision.
    """
    check_in_range(floor, "floor", low=0.0, inclusive_low=False)
    decomposition = sorted_eigh(matrix)
    top = float(decomposition.values[0])
    if top <= 0.0:
        raise NotPositiveDefiniteError(
            "matrix has no positive eigenvalues; cannot invert"
        )
    clipped = np.clip(decomposition.values, floor * top, None)
    if trace.enabled():
        trace.count("linalg.psd_inverse.calls")
        trace.gauge(
            "linalg.psd_inverse.condition",
            condition_number(decomposition.values),
        )
        if bool(np.any(decomposition.values < floor * top)):
            trace.count("linalg.psd_inverse.clipped")
    vectors = decomposition.vectors
    inverse = (vectors / clipped) @ vectors.T
    return (inverse + inverse.T) / 2.0
