"""Positive-semidefinite repair and PSD-aware factorizations.

Theorem 5.1 estimates the original covariance by subtracting ``sigma^2``
from the diagonal of a *sample* covariance.  For finite samples the result
routinely has small negative eigenvalues, which breaks the matrix inverse
in BE-DR (Eq. 11) and Cholesky-based sampling.  The paper does not discuss
this; any faithful implementation must repair the spectrum, and this
module centralizes that.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotPositiveDefiniteError
from repro.linalg.eigen import sorted_eigh
from repro.utils.validation import check_in_range, check_symmetric

__all__ = [
    "is_positive_semidefinite",
    "nearest_psd",
    "cholesky_with_jitter",
    "psd_inverse",
]


def is_positive_semidefinite(matrix, *, tol: float = 1e-10) -> bool:
    """True when all eigenvalues of the symmetric ``matrix`` are ``>= -tol``.

    The tolerance is relative to the largest absolute eigenvalue so the
    check is scale-free.
    """
    sym = check_symmetric(matrix, "matrix")
    values = np.linalg.eigvalsh(sym)
    scale = max(float(np.max(np.abs(values))), 1.0)
    return bool(values.min() >= -tol * scale)


def nearest_psd(matrix, *, floor: float = 0.0) -> np.ndarray:
    """Project a symmetric matrix onto the PSD cone by spectral clipping.

    Eigenvalues below ``floor`` are raised to ``floor``; eigenvectors are
    kept.  With ``floor=0`` this is the Frobenius-nearest PSD matrix
    (Higham's projection for symmetric input).  A strictly positive floor
    yields a positive-*definite* result suitable for inversion.

    Parameters
    ----------
    matrix:
        Symmetric matrix, e.g. a Theorem-5.1 covariance estimate.
    floor:
        Minimum allowed eigenvalue; must be ``>= 0``.
    """
    check_in_range(floor, "floor", low=0.0)
    decomposition = sorted_eigh(matrix)
    clipped = np.clip(decomposition.values, floor, None)
    if np.array_equal(clipped, decomposition.values):
        # Already PSD with the requested floor: return the symmetrized input.
        return check_symmetric(matrix, "matrix")
    vectors = decomposition.vectors
    repaired = (vectors * clipped) @ vectors.T
    return (repaired + repaired.T) / 2.0


def cholesky_with_jitter(
    matrix,
    *,
    initial_jitter: float = 1e-12,
    max_tries: int = 12,
) -> np.ndarray:
    """Cholesky factor of a (nearly) PSD matrix, adding diagonal jitter.

    Tries a plain Cholesky first; on failure adds ``jitter * mean(diag)``
    to the diagonal, multiplying the jitter by 10 each retry.  Raises
    :class:`NotPositiveDefiniteError` when the budget is exhausted, which
    signals the matrix is genuinely indefinite rather than borderline.

    Returns the lower-triangular ``L`` with ``L @ L.T ≈ matrix``.
    """
    sym = check_symmetric(matrix, "matrix")
    scale = float(np.mean(np.diag(sym)))
    if scale <= 0.0:
        scale = 1.0
    jitter = 0.0
    next_jitter = initial_jitter
    for _ in range(max_tries):
        try:
            return np.linalg.cholesky(sym + jitter * scale * np.eye(sym.shape[0]))
        except np.linalg.LinAlgError:
            jitter = next_jitter
            next_jitter *= 10.0
    raise NotPositiveDefiniteError(
        "matrix is not positive definite even after adding jitter up to "
        f"{jitter * scale:.3g}"
    )


def psd_inverse(matrix, *, floor: float = 1e-10) -> np.ndarray:
    """Stable inverse of a symmetric PSD matrix via spectral clipping.

    Eigenvalues are floored at ``floor * max(eigenvalue)`` before
    inverting, so near-singular covariance estimates (common after the
    Theorem-5.1 diagonal subtraction) produce a bounded inverse instead of
    exploding.  For well-conditioned input this equals ``inv(matrix)`` to
    machine precision.
    """
    check_in_range(floor, "floor", low=0.0, inclusive_low=False)
    decomposition = sorted_eigh(matrix)
    top = float(decomposition.values[0])
    if top <= 0.0:
        raise NotPositiveDefiniteError(
            "matrix has no positive eigenvalues; cannot invert"
        )
    clipped = np.clip(decomposition.values, floor * top, None)
    vectors = decomposition.vectors
    inverse = (vectors / clipped) @ vectors.T
    return (inverse + inverse.T) / 2.0
