"""Gram-Schmidt orthonormalization and random orthogonal matrices.

Section 7.1 of the paper generates covariance matrices by drawing a random
orthogonal matrix via "Gram-Schmidt orthonormalization process" and
combining it with a chosen eigenvalue spectrum.  We implement the
numerically stable *modified* Gram-Schmidt with re-orthogonalization, and
a Haar-ish random orthogonal matrix built by orthonormalizing a Gaussian
matrix (equivalent to a QR-based draw with sign correction).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["gram_schmidt", "is_orthonormal", "random_orthogonal"]

# Vectors whose norm collapses below this after projection are treated as
# linearly dependent on the vectors already in the basis.
_DEPENDENCE_TOL = 1e-12


def gram_schmidt(vectors, *, reorthogonalize: bool = True) -> np.ndarray:
    """Orthonormalize the columns of ``vectors``.

    Uses modified Gram-Schmidt; with ``reorthogonalize=True`` each column
    is passed through the projection loop twice ("twice is enough",
    Giraud et al.), which keeps the result orthonormal to machine
    precision even for badly conditioned inputs.

    Parameters
    ----------
    vectors:
        Array of shape ``(m, k)`` whose ``k`` columns are linearly
        independent vectors in ``R^m``.
    reorthogonalize:
        Apply a second projection sweep per column.

    Returns
    -------
    numpy.ndarray
        Array ``Q`` of shape ``(m, k)`` with orthonormal columns spanning
        the same space, ``Q.T @ Q = I``.

    Raises
    ------
    ValidationError
        If the columns are linearly dependent (within tolerance) or there
        are more columns than rows.
    """
    matrix = check_matrix(vectors, "vectors")
    m, k = matrix.shape
    if k > m:
        raise ValidationError(
            f"cannot orthonormalize {k} vectors in R^{m}: too many columns"
        )
    basis = np.empty((m, k), dtype=np.float64)
    sweeps = 2 if reorthogonalize else 1
    for j in range(k):
        v = matrix[:, j].copy()
        original_norm = np.linalg.norm(v)
        if original_norm <= _DEPENDENCE_TOL:
            raise ValidationError(f"column {j} of 'vectors' is (near) zero")
        for _ in range(sweeps):
            for i in range(j):
                v -= (basis[:, i] @ v) * basis[:, i]
        norm = np.linalg.norm(v)
        if norm <= _DEPENDENCE_TOL * original_norm:
            raise ValidationError(
                f"column {j} of 'vectors' is linearly dependent on the "
                "previous columns"
            )
        basis[:, j] = v / norm
    return basis


def is_orthonormal(matrix, *, atol: float = 1e-8) -> bool:
    """Return True when ``matrix`` has orthonormal columns within ``atol``."""
    q = check_matrix(matrix, "matrix")
    gram = q.T @ q
    return bool(np.allclose(gram, np.eye(q.shape[1]), atol=atol, rtol=0.0))


def random_orthogonal(dim: int, rng=None) -> np.ndarray:
    """Draw a random ``dim x dim`` orthogonal matrix.

    A standard-normal matrix is orthonormalized with Gram-Schmidt — the
    construction the paper describes.  Column signs are then fixed so the
    distribution does not favour a sign pattern (the classic QR
    sign-correction), making the draw Haar-distributed.

    Parameters
    ----------
    dim:
        Matrix dimension; must be positive.
    rng:
        Seed or generator (see :func:`repro.utils.rng.as_generator`).
    """
    dim = check_positive_int(dim, "dim")
    generator = as_generator(rng)
    while True:
        gaussian = generator.standard_normal((dim, dim))
        try:
            q = gram_schmidt(gaussian)
        except ValidationError:
            # A singular Gaussian draw has probability zero but guard anyway.
            continue
        break
    # Sign correction: make the diagonal of R (= Q^T G) positive.
    signs = np.sign(np.einsum("ij,ij->j", q, gaussian))
    # np.sign returns exactly 0.0 for a zero projection; this replaces
    # that exact sentinel, not an approximate value.
    signs[signs == 0.0] = 1.0  # repro: ignore[float-eq] exact sign sentinel
    return q * signs
