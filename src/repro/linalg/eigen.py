"""Sorted symmetric eigendecompositions and spectrum diagnostics.

PCA-DR (Section 5) orders eigenvalues descending and needs a rule for
splitting "principal" from "non-principal" components.  The paper's
experiments use the *largest gap* between consecutive eigenvalues
(Section 5.2.2, footnote 1); :func:`eigen_gap_split` implements that rule
and :func:`spectrum_energy_fraction` supports the energy-based variant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.serialization import values_equal
from repro.utils.validation import check_symmetric, check_vector

__all__ = [
    "EigenDecomposition",
    "sorted_eigh",
    "condition_number",
    "eigen_gap_split",
    "spectrum_energy_fraction",
]

#: Condition numbers are reported capped at this value so they stay
#: representable in strict (``allow_nan=False``) JSON documents —
#: matches :data:`repro.telemetry.convergence.CONDITION_CAP`.
CONDITION_CAP = 1e300


@dataclass(frozen=True, eq=False)
class EigenDecomposition:
    """Eigendecomposition of a symmetric matrix, sorted descending.

    Attributes
    ----------
    values:
        Eigenvalues, shape ``(m,)``, ``values[0] >= values[1] >= ...``.
    vectors:
        Matching eigenvectors as columns, shape ``(m, m)``;
        ``matrix @ vectors[:, k] == values[k] * vectors[:, k]``.
    """

    values: np.ndarray
    vectors: np.ndarray

    def __eq__(self, other) -> bool:
        # The generated dataclass __eq__ would raise the ambiguous-truth
        # ValueError on the array fields.
        if not isinstance(other, EigenDecomposition):
            return NotImplemented
        return values_equal(self.values, other.values) and values_equal(
            self.vectors, other.vectors
        )

    @property
    def dim(self) -> int:
        """Dimension of the decomposed matrix."""
        return int(self.values.size)

    def reconstruct(self, rank: int | None = None) -> np.ndarray:
        """Rebuild the matrix from the top ``rank`` eigenpairs.

        With ``rank=None`` the full matrix is reproduced (up to floating
        point); a smaller rank gives the best rank-``rank`` approximation.
        """
        if rank is None:
            rank = self.dim
        if not 1 <= rank <= self.dim:
            raise ValidationError(
                f"rank must be in [1, {self.dim}], got {rank}"
            )
        q = self.vectors[:, :rank]
        return (q * self.values[:rank]) @ q.T

    def projector(self, rank: int) -> np.ndarray:
        """Orthogonal projector ``Q_p Q_p^T`` onto the top-``rank`` subspace.

        This is exactly the matrix PCA-DR multiplies the disguised data by
        in step 3 of Section 5.2.2.
        """
        if not 1 <= rank <= self.dim:
            raise ValidationError(
                f"rank must be in [1, {self.dim}], got {rank}"
            )
        q = self.vectors[:, :rank]
        return q @ q.T


def sorted_eigh(matrix, name: str = "matrix") -> EigenDecomposition:
    """Eigendecompose a symmetric matrix with eigenvalues sorted descending.

    Wraps :func:`numpy.linalg.eigh` (which sorts ascending) and reverses
    the order, matching the paper's convention ``lambda_1 >= ... >=
    lambda_m``.
    """
    sym = check_symmetric(matrix, name)
    values, vectors = np.linalg.eigh(sym)
    order = np.argsort(values)[::-1]
    return EigenDecomposition(values=values[order], vectors=vectors[:, order])


def condition_number(values) -> float:
    """Spectral condition number from a symmetric matrix's eigenvalues.

    ``|lambda|_max / |lambda|_min`` — the health probe the telemetry
    layer publishes for PSD repairs and inversions: a Theorem-5.1
    covariance estimate drifting toward singularity shows up as this
    number exploding before any kernel actually fails.

    Parameters
    ----------
    values:
        Eigenvalues in any order (e.g. from :func:`sorted_eigh`).

    Returns
    -------
    float
        The condition number, capped at :data:`CONDITION_CAP`; a
        singular or zero spectrum returns the cap itself.
    """
    spectrum = np.abs(check_vector(values, "values"))
    top = float(spectrum.max())
    bottom = float(spectrum.min())
    if top <= 0.0 or bottom <= 0.0:
        return CONDITION_CAP
    ratio = top / bottom
    if not math.isfinite(ratio) or ratio > CONDITION_CAP:
        return CONDITION_CAP
    return ratio


def eigen_gap_split(values, *, max_rank: int | None = None) -> int:
    """Number of principal components chosen by the largest-gap rule.

    Finds ``p`` maximizing ``values[p-1] - values[p]``, the split where
    the descending spectrum drops the most — the selection rule the paper
    uses in its experiments (Section 5.2.2, footnote 1: "choose the
    dominant eigenvalues by finding the largest gap between the dominant
    eigenvalues and the non-dominant ones").

    A virtual trailing eigenvalue of zero participates as the "fully
    non-dominant" baseline, so ``p = m`` is selectable: a flat spectrum
    (every direction equally strong — no correlations to exploit) keeps
    all components instead of being forced to discard signal at an
    arbitrary interior gap.

    Parameters
    ----------
    values:
        Eigenvalues sorted descending.
    max_rank:
        Optional cap: only consider splits with ``p <= max_rank``.

    Returns
    -------
    int
        ``p`` in ``[1, m]``.
    """
    spectrum = check_vector(values, "values")
    if np.any(np.diff(spectrum) > 1e-9):
        raise ValidationError("'values' must be sorted in descending order")
    m = spectrum.size
    limit = m if max_rank is None else min(max_rank, m)
    if limit < 1:
        raise ValidationError(f"max_rank must be >= 1, got {max_rank}")
    padded = np.append(spectrum, 0.0)
    gaps = padded[:limit] - padded[1 : limit + 1]
    return int(np.argmax(gaps)) + 1


def spectrum_energy_fraction(values, fraction: float) -> int:
    """Smallest ``p`` whose top-``p`` eigenvalues hold ``fraction`` of energy.

    "Energy" is the sum of eigenvalues (the total variance, Eq. 12 of the
    paper).  Used by the energy-based component-selection strategy.

    Parameters
    ----------
    values:
        Eigenvalues sorted descending; must be non-negative overall sum.
    fraction:
        Target fraction in ``(0, 1]``.
    """
    spectrum = check_vector(values, "values")
    if not 0.0 < fraction <= 1.0:
        raise ValidationError(
            f"fraction must be in (0, 1], got {fraction}"
        )
    clipped = np.clip(spectrum, 0.0, None)
    total = float(clipped.sum())
    if total <= 0.0:
        raise ValidationError("'values' has no positive energy")
    cumulative = np.cumsum(clipped) / total
    return int(np.searchsorted(cumulative, fraction - 1e-12)) + 1
