"""Covariance estimation, including the paper's Theorem 5.1 estimator.

Theorem 5.1: for disguised data ``Y = X + R`` with i.i.d. zero-mean noise
of variance ``sigma^2`` per attribute,

    Cov(Y)_ij = Cov(X)_ij + sigma^2 * [i == j],

so the adversary recovers ``Cov(X)`` by subtracting ``sigma^2`` from the
diagonal of the sample covariance of ``Y``.  Theorem 8.2 generalizes this
to correlated noise: ``Cov(Y) = Cov(X) + Cov(R)``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.psd import nearest_psd
from repro.utils.validation import check_matrix, check_symmetric, check_vector

__all__ = [
    "sample_mean",
    "sample_covariance",
    "ledoit_wolf_covariance",
    "covariance_from_disguised",
    "correlation_from_covariance",
]


def sample_mean(data) -> np.ndarray:
    """Column means of an ``(n, m)`` data matrix."""
    matrix = check_matrix(data, "data")
    return matrix.mean(axis=0)


def sample_covariance(data, *, ddof: int = 1) -> np.ndarray:
    """Sample covariance of an ``(n, m)`` data matrix (columns = attributes).

    Parameters
    ----------
    data:
        Data matrix with at least ``ddof + 1`` rows.
    ddof:
        Delta degrees of freedom; 1 gives the unbiased estimator.
    """
    matrix = check_matrix(data, "data")
    n = matrix.shape[0]
    if n <= ddof:
        raise ValidationError(
            f"need more than ddof={ddof} rows to estimate covariance, got {n}"
        )
    centered = matrix - matrix.mean(axis=0)
    cov = centered.T @ centered / (n - ddof)
    return (cov + cov.T) / 2.0


def ledoit_wolf_covariance(data) -> tuple[np.ndarray, float]:
    """Ledoit-Wolf shrinkage covariance estimate.

    Shrinks the sample covariance toward the scaled identity
    ``mu * I`` with the data-driven intensity of Ledoit & Wolf (2004,
    "A well-conditioned estimator for large-dimensional covariance
    matrices").  For the reconstruction attacks this matters in the
    small-sample regime (ablation A3): the raw Theorem-5.1 estimate is an
    unbiased but high-variance input to the eigendecomposition and matrix
    inverse, and shrinkage trades a little bias for much less variance.

    Parameters
    ----------
    data:
        Data matrix of shape ``(n, m)`` with ``n >= 2``.

    Returns
    -------
    (covariance, shrinkage):
        The shrunk estimate of shape ``(m, m)`` and the shrinkage
        intensity in ``[0, 1]`` (0 = pure sample covariance, 1 = pure
        scaled identity).
    """
    matrix = check_matrix(data, "data", min_rows=2)
    n, m = matrix.shape
    centered = matrix - matrix.mean(axis=0)
    # LW derivation uses the 1/n covariance.
    sample = centered.T @ centered / n
    mu = float(np.trace(sample)) / m
    # d^2: distance of the sample covariance from the target.
    d2 = float(np.sum((sample - mu * np.eye(m)) ** 2)) / m
    if d2 <= 0.0:
        return mu * np.eye(m), 1.0
    # b^2: estimation variance of the sample covariance.  Expanding
    # sum_k ||x_k x_k^T - S||_F^2 with S = (1/n) sum_k x_k x_k^T gives
    # the closed form sum_k (x_k . x_k)^2 - n ||S||_F^2 — O(n m) instead
    # of materializing per-record (m, m) outer products.  The expansion
    # subtracts two same-magnitude sums, so it matches the historical
    # blocked accumulation to ~1e-9 relative rather than bit-for-bit
    # (regression-pinned in tests/unit/test_hotpath_regression.py);
    # clip at zero in case rounding drives the difference negative.
    row_sq_norms = np.einsum("ij,ij->i", centered, centered)
    b2_sum = max(
        float(np.sum(row_sq_norms**2)) - n * float(np.sum(sample**2)),
        0.0,
    )
    b2 = min(b2_sum / (n * n * m), d2)
    shrinkage = b2 / d2
    shrunk = shrinkage * mu * np.eye(m) + (1.0 - shrinkage) * sample
    # Rescale to the unbiased (ddof=1) convention used elsewhere.
    shrunk *= n / (n - 1)
    return (shrunk + shrunk.T) / 2.0, float(shrinkage)


def covariance_from_disguised(
    disguised,
    noise_covariance,
    *,
    ensure_psd: bool = True,
    ddof: int = 1,
    estimator: str = "sample",
) -> np.ndarray:
    """Estimate ``Cov(X)`` from disguised data (Theorems 5.1 / 8.2).

    Computes the sample covariance of the disguised data and subtracts the
    (known, public) noise covariance.  For the paper's baseline scheme the
    noise covariance is ``sigma^2 * I``; pass a scalar for that case.

    Parameters
    ----------
    disguised:
        The published data ``Y = X + R``, shape ``(n, m)``.
    noise_covariance:
        Either a scalar ``sigma^2`` (i.i.d. noise, Theorem 5.1), a length-m
        vector of per-attribute variances, or a full ``(m, m)`` covariance
        (Theorem 8.2).
    ensure_psd:
        Clip negative eigenvalues that arise from sampling error.  The
        paper's analysis assumes ``n`` large enough that the estimate is
        PSD; real samples are not so lucky.
    ddof:
        Passed to :func:`sample_covariance` (``estimator="sample"``).
    estimator:
        ``"sample"`` (the paper's estimator) or ``"ledoit-wolf"``
        (shrinkage toward the scaled identity; better conditioned at
        small ``n``, see :func:`ledoit_wolf_covariance`).

    Returns
    -------
    numpy.ndarray
        Estimated original covariance, shape ``(m, m)``.
    """
    matrix = check_matrix(disguised, "disguised")
    m = matrix.shape[1]
    if estimator == "sample":
        cov_y = sample_covariance(matrix, ddof=ddof)
    elif estimator == "ledoit-wolf":
        cov_y, _ = ledoit_wolf_covariance(matrix)
    else:
        raise ValidationError(
            "estimator must be 'sample' or 'ledoit-wolf', got "
            f"{estimator!r}"
        )
    cov_r = _coerce_noise_covariance(noise_covariance, m)
    estimate = cov_y - cov_r
    if ensure_psd:
        estimate = nearest_psd(estimate)
    return estimate


def _coerce_noise_covariance(noise_covariance, m: int) -> np.ndarray:
    """Normalize scalar / vector / matrix noise specs to an (m, m) matrix."""
    if np.isscalar(noise_covariance):
        variance = float(noise_covariance)
        if variance < 0.0:
            raise ValidationError(
                f"noise variance must be non-negative, got {variance}"
            )
        return variance * np.eye(m)
    array = np.asarray(noise_covariance, dtype=np.float64)
    if array.ndim == 1:
        vector = check_vector(array, "noise_covariance")
        if vector.size != m:
            raise ValidationError(
                f"noise variance vector has length {vector.size}, "
                f"expected {m}"
            )
        if np.any(vector < 0.0):
            raise ValidationError("noise variances must be non-negative")
        return np.diag(vector)
    sym = check_symmetric(array, "noise_covariance")
    if sym.shape[0] != m:
        raise ValidationError(
            f"noise covariance is {sym.shape[0]}x{sym.shape[0]}, "
            f"expected {m}x{m}"
        )
    return sym


def correlation_from_covariance(covariance) -> np.ndarray:
    """Convert a covariance matrix to a correlation-coefficient matrix.

    Used by the Definition-8.1 dissimilarity metric.  Attributes with zero
    variance are rejected because their correlations are undefined.
    """
    cov = check_symmetric(covariance, "covariance")
    diagonal = np.diag(cov)
    if np.any(diagonal <= 0.0):
        raise ValidationError(
            "covariance has non-positive diagonal entries; correlations "
            "are undefined"
        )
    scale = 1.0 / np.sqrt(diagonal)
    corr = cov * np.outer(scale, scale)
    np.fill_diagonal(corr, 1.0)
    return np.clip(corr, -1.0, 1.0)
