"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
errors such as :class:`TypeError` raised by NumPy itself.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "ShapeError",
    "NotFittedError",
    "NotPositiveDefiniteError",
    "ConvergenceError",
    "SpectrumError",
    "ConfigurationError",
    "JobExecutionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An input value failed validation (wrong dtype, NaN, out of range)."""


class ShapeError(ValidationError):
    """An array argument has an incompatible shape."""

    def __init__(self, name: str, expected: str, actual: tuple[int, ...]):
        self.name = name
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"argument {name!r} has shape {actual}, expected {expected}"
        )


class NotFittedError(ReproError, RuntimeError):
    """An estimator method requiring :meth:`fit` was called before it."""

    def __init__(self, estimator: object):
        name = type(estimator).__name__
        super().__init__(
            f"{name} is not fitted yet; call 'fit' before using this method"
        )


class NotPositiveDefiniteError(ReproError, ValueError):
    """A matrix required to be positive (semi-)definite is not."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative procedure failed to converge within its budget."""

    def __init__(self, message: str, iterations: int | None = None):
        self.iterations = iterations
        if iterations is not None:
            message = f"{message} (after {iterations} iterations)"
        super().__init__(message)


class SpectrumError(ValidationError):
    """An eigenvalue specification is invalid (negative, empty, unordered)."""


class ConfigurationError(ReproError, ValueError):
    """An experiment or scheme configuration is inconsistent."""


class JobExecutionError(ReproError, RuntimeError):
    """A job failed inside an engine executor.

    Carries only a flat message (task name, job key prefix, and the
    original error) so it survives pickling across process boundaries.
    """
