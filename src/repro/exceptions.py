"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
errors such as :class:`TypeError` raised by NumPy itself.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = [
    "ReproError",
    "ValidationError",
    "ShapeError",
    "NotFittedError",
    "NotPositiveDefiniteError",
    "ConvergenceError",
    "SpectrumError",
    "ConfigurationError",
    "JobExecutionError",
    "DataPlaneError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An input value failed validation (wrong dtype, NaN, out of range)."""


class ShapeError(ValidationError):
    """An array argument has an incompatible shape."""

    def __init__(self, name: str, expected: str, actual: tuple[int, ...]):
        self.name = name
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"argument {name!r} has shape {actual}, expected {expected}"
        )


class NotFittedError(ReproError, RuntimeError):
    """An estimator method requiring :meth:`fit` was called before it."""

    def __init__(self, estimator: object):
        name = type(estimator).__name__
        super().__init__(
            f"{name} is not fitted yet; call 'fit' before using this method"
        )


class NotPositiveDefiniteError(ReproError, ValueError):
    """A matrix required to be positive (semi-)definite is not."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative procedure failed to converge within its budget.

    Beyond the iteration count, the raiser can attach the state the
    procedure died in — the final objective value, the last
    convergence delta, and the tail of the objective trajectory — so a
    non-convergent fit is diagnosable post-mortem from the exception
    alone, without re-running under tracing.

    Attributes
    ----------
    iterations:
        Iterations consumed before giving up, or ``None``.
    final_objective:
        Last objective value (e.g. mean log-likelihood), or ``None``.
    last_delta:
        Last convergence increment compared against the tolerance, or
        ``None``.
    trajectory_tail:
        The most recent objective values as a tuple, oldest first, or
        ``None``.
    """

    def __init__(
        self,
        message: str,
        iterations: int | None = None,
        *,
        final_objective: float | None = None,
        last_delta: float | None = None,
        trajectory_tail: Sequence[float] | None = None,
    ):
        self.iterations = iterations
        self.final_objective = (
            float(final_objective) if final_objective is not None else None
        )
        self.last_delta = (
            float(last_delta) if last_delta is not None else None
        )
        self.trajectory_tail = (
            tuple(float(value) for value in trajectory_tail)
            if trajectory_tail is not None
            else None
        )
        details = []
        if iterations is not None:
            details.append(f"after {iterations} iterations")
        if self.final_objective is not None:
            details.append(f"final objective {self.final_objective:.6g}")
        if self.last_delta is not None:
            details.append(f"last delta {self.last_delta:.3g}")
        if details:
            message = f"{message} ({', '.join(details)})"
        if self.trajectory_tail:
            tail = ", ".join(
                f"{value:.6g}" for value in self.trajectory_tail
            )
            message = f"{message}; trajectory tail [{tail}]"
        super().__init__(message)


class SpectrumError(ValidationError):
    """An eigenvalue specification is invalid (negative, empty, unordered)."""


class ConfigurationError(ReproError, ValueError):
    """An experiment or scheme configuration is inconsistent."""


class JobExecutionError(ReproError, RuntimeError):
    """A job failed inside an engine executor.

    Carries a flat message (task name, job key prefix, and the original
    error) plus the worker-side formatted traceback string, both plain
    strings so the exception survives pickling across process
    boundaries.  ``__traceback__`` objects do not pickle, so
    :attr:`traceback` is the only record of *where* the task failed
    once the error crosses back to the parent process.
    """

    def __init__(self, message: str, traceback: str | None = None):
        super().__init__(message)
        self.traceback = traceback

    def __reduce__(self):
        # Default Exception pickling replays only ``args``; carry the
        # traceback string through explicitly.
        return (type(self), (self.args[0] if self.args else "", self.traceback))


class DataPlaneError(ReproError, RuntimeError):
    """A shared-memory data-plane operation failed.

    Raised when an :class:`~repro.engine.dataplane.ArrayRef` cannot be
    resolved in the current process (array never published, segment
    gone) or when a shared-memory segment cannot be created or
    attached.
    """
