"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
errors such as :class:`TypeError` raised by NumPy itself.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "ShapeError",
    "NotFittedError",
    "NotPositiveDefiniteError",
    "ConvergenceError",
    "SpectrumError",
    "ConfigurationError",
    "JobExecutionError",
    "DataPlaneError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An input value failed validation (wrong dtype, NaN, out of range)."""


class ShapeError(ValidationError):
    """An array argument has an incompatible shape."""

    def __init__(self, name: str, expected: str, actual: tuple[int, ...]):
        self.name = name
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"argument {name!r} has shape {actual}, expected {expected}"
        )


class NotFittedError(ReproError, RuntimeError):
    """An estimator method requiring :meth:`fit` was called before it."""

    def __init__(self, estimator: object):
        name = type(estimator).__name__
        super().__init__(
            f"{name} is not fitted yet; call 'fit' before using this method"
        )


class NotPositiveDefiniteError(ReproError, ValueError):
    """A matrix required to be positive (semi-)definite is not."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative procedure failed to converge within its budget."""

    def __init__(self, message: str, iterations: int | None = None):
        self.iterations = iterations
        if iterations is not None:
            message = f"{message} (after {iterations} iterations)"
        super().__init__(message)


class SpectrumError(ValidationError):
    """An eigenvalue specification is invalid (negative, empty, unordered)."""


class ConfigurationError(ReproError, ValueError):
    """An experiment or scheme configuration is inconsistent."""


class JobExecutionError(ReproError, RuntimeError):
    """A job failed inside an engine executor.

    Carries a flat message (task name, job key prefix, and the original
    error) plus the worker-side formatted traceback string, both plain
    strings so the exception survives pickling across process
    boundaries.  ``__traceback__`` objects do not pickle, so
    :attr:`traceback` is the only record of *where* the task failed
    once the error crosses back to the parent process.
    """

    def __init__(self, message: str, traceback: str | None = None):
        super().__init__(message)
        self.traceback = traceback

    def __reduce__(self):
        # Default Exception pickling replays only ``args``; carry the
        # traceback string through explicitly.
        return (type(self), (self.args[0] if self.args else "", self.traceback))


class DataPlaneError(ReproError, RuntimeError):
    """A shared-memory data-plane operation failed.

    Raised when an :class:`~repro.engine.dataplane.ArrayRef` cannot be
    resolved in the current process (array never published, segment
    gone) or when a shared-memory segment cannot be created or
    attached.
    """
