"""Serializable experiment descriptions that compile into engine jobs.

An :class:`ExperimentSpec` is the declarative form of one experiment:
*which* components (randomization scheme, attack battery or threat
model, dataset generator — all referenced by their JSON-safe registry
specs), *what* sweep (a grid over arbitrary dotted parameters, or an
explicit list of per-point overrides), and *how* to execute (trials per
point, root seed).  It validates eagerly — a typo fails at construction,
not inside job 7000 of a sweep — and :meth:`compile_jobs` lowers it into
the engine's :class:`~repro.engine.jobs.JobSpec` list, inheriting the
engine's determinism contract: the same spec always produces the same
job keys, so caching and parallel execution behave identically to the
hand-written runners.

Two modes share the class:

* **Component mode** (``task=None``): ``scheme``, ``dataset``, and
  ``attacks``/``threat_model`` are registry spec dicts; jobs run the
  generic :func:`repro.api.tasks.attack_point` worker.  This is the
  user-facing path — any scheme x attack x dataset combination is a
  JSON file.
* **Raw-task mode** (``task="pkg.mod:fn"``): points are parameter dicts
  for a custom engine task.  The built-in figure and ablation specs use
  this to reproduce the paper bit-identically.
"""

from __future__ import annotations

import copy
import itertools
import json
import pathlib
from dataclasses import dataclass, field, fields
from typing import Any

import numpy as np

from repro.engine.jobs import JobSpec, _canonical_json
from repro.exceptions import ConfigurationError, ValidationError
from repro.registry import ATTACKS, DATASETS, SCHEMES
from repro.utils.serialization import values_equal
from repro.utils.validation import check_positive_int

__all__ = ["GENERIC_TASK", "ExperimentSpec"]

#: Engine task executed by component-mode specs.
GENERIC_TASK = "repro.api.tasks:attack_point"

_SEED_MODES = ("grid", "root")


def _apply_override(params: dict[str, Any], path: str, value: Any) -> None:
    """Set a dotted-path override like ``"scheme.std"`` inside params."""
    parts = path.split(".")
    target = params
    for part in parts[:-1]:
        if not isinstance(target.get(part), dict):
            raise ValidationError(
                f"sweep path {path!r} does not resolve: {part!r} is not a "
                "dict in the base parameters"
            )
        target = target[part]
    target[parts[-1]] = value


@dataclass(frozen=True, eq=False)
class ExperimentSpec:
    """One experiment as data: components + sweep + execution knobs.

    Attributes
    ----------
    name:
        Experiment identifier (becomes the result series' name).
    task:
        ``"package.module:function"`` engine task, or ``None`` for the
        generic component-driven pipeline task.
    scheme / attacks / threat_model / dataset:
        Component-mode registry spec dicts.  ``attacks`` maps curve
        labels to attack specs; ``threat_model`` is the alternative
        declarative adversary (its battery defines the labels).
    params:
        Fixed task parameters shared by every sweep point (component
        mode requires ``n_records`` here or in the sweep).
    grid:
        Sweep grid: dotted parameter path to list of values, expanded as
        a cross product in insertion order (e.g. ``{"scheme.std": [1,
        2], "n_records": [500, 2000]}`` makes four points).
    points:
        Explicit per-point override dicts — the pre-expanded alternative
        to ``grid`` (used by the built-in paper specs, whose per-point
        spectra are derived, not gridded).
    trials:
        Independent repetitions averaged per point.
    seed:
        Engine seed root; job ``(point, trial)`` streams derive from it.
        ``None`` only in raw-task mode, for tasks that seed themselves
        from explicit params.
    seed_mode:
        ``"grid"`` derives per-job streams from ``(point, trial)``;
        ``"root"`` hands the root stream to a single job (the historical
        theorem-5.2 derivation).
    backend:
        Preferred executor backend name (see
        :func:`repro.engine.backend_names`), or ``None`` to let the
        caller decide.  Purely an execution hint: it never reaches
        :meth:`compile_jobs`, so job keys — and therefore cache entries
        — are identical whichever backend runs the spec.
    x_param / x_from / x_values / x_label:
        Where the x-axis comes from: a swept parameter path, a payload
        key averaged per point (e.g. measured dissimilarity), or an
        explicit list.  At most one of the three sources.
    metadata:
        Carried verbatim onto the result series.
    """

    name: str
    task: str | None = None
    scheme: dict[str, Any] | None = None
    attacks: dict[str, Any] | None = None
    threat_model: dict[str, Any] | None = None
    dataset: dict[str, Any] | None = None
    params: dict[str, Any] = field(default_factory=dict)
    grid: dict[str, Any] = field(default_factory=dict)
    points: tuple[dict[str, Any], ...] = ()
    trials: int = 1
    seed: int | None = None
    seed_mode: str = "grid"
    backend: str | None = None
    x_param: str | None = None
    x_from: str | None = None
    x_values: tuple[float, ...] | None = None
    x_label: str | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValidationError("spec 'name' must be a non-empty string")
        check_positive_int(self.trials, "trials")
        if self.seed is not None:
            check_positive_int(self.seed, "seed", minimum=0)
        if self.seed_mode not in _SEED_MODES:
            raise ValidationError(
                f"seed_mode must be one of {_SEED_MODES}, got "
                f"{self.seed_mode!r}"
            )
        if self.backend is not None:
            from repro.engine.backends import BACKENDS, backend_names

            if self.backend not in BACKENDS:
                raise ValidationError(
                    f"unknown executor backend {self.backend!r}; "
                    f"registered: {backend_names()}"
                )
        if not isinstance(self.params, dict):
            raise ValidationError("'params' must be a dict")
        if not isinstance(self.grid, dict):
            raise ValidationError("'grid' must be a dict")
        for path, values in self.grid.items():
            if not isinstance(path, str) or not path:
                raise ValidationError(
                    f"grid keys must be parameter paths, got {path!r}"
                )
            if not isinstance(values, (list, tuple)) or len(values) == 0:
                raise ValidationError(
                    f"grid values for {path!r} must be a non-empty list"
                )
        object.__setattr__(self, "grid", {k: list(v) for k, v in self.grid.items()})
        points = tuple(self.points)
        if self.grid and points:
            raise ValidationError(
                "give either 'grid' or explicit 'points', not both"
            )
        for point in points:
            if not isinstance(point, dict):
                raise ValidationError(
                    f"each point must be a dict of overrides, got "
                    f"{type(point).__name__}"
                )
        object.__setattr__(self, "points", points)
        if self.x_values is not None:
            object.__setattr__(
                self,
                "x_values",
                tuple(float(x) for x in np.asarray(self.x_values).ravel()),
            )
        x_sources = [
            source
            for source in (self.x_param, self.x_from, self.x_values)
            if source is not None
        ]
        if len(x_sources) > 1:
            raise ValidationError(
                "give at most one of 'x_param', 'x_from', 'x_values'"
            )
        self._validate_mode()
        expanded = self.expand_points()
        if self.task is None:
            # Eager component validation: instantiate the first point's
            # components now so bad specs fail at construction.
            self.point_params(expanded[0])
        if self.x_param is not None and any(
            self.x_param not in point for point in expanded
        ):
            raise ValidationError(
                f"x_param {self.x_param!r} is not set by every sweep point"
            )
        n_points = len(expanded)
        if self.seed_mode == "root" and (self.trials != 1 or n_points != 1):
            raise ValidationError(
                "seed_mode='root' feeds the root stream to one job; it "
                "requires a single point and trials=1"
            )
        if self.task is not None and self.seed is None and self.trials > 1:
            # A raw-task spec without a seed gives every trial the same
            # derived stream, so "averaging trials" would average
            # identical numbers — reject instead of silently lying.
            raise ValidationError(
                "a raw-task spec with trials > 1 requires an explicit "
                "'seed'; without one all trials would be identical"
            )
        if self.x_values is not None and len(self.x_values) not in (
            n_points,
            0,
        ):
            # A single list-payload job may expand to many x positions,
            # so only a per-point x list is length-checked here.
            if not (n_points == 1 and self.trials == 1):
                raise ValidationError(
                    f"'x_values' has {len(self.x_values)} entries for "
                    f"{n_points} sweep points"
                )
        # Any spec must be JSON round-trippable — that is the contract.
        _canonical_json(self.to_dict())

    def _validate_mode(self) -> None:
        if self.task is None:
            missing = [
                label
                for label, value in (
                    ("scheme", self.scheme),
                    ("dataset", self.dataset),
                )
                if value is None
            ]
            if missing:
                raise ValidationError(
                    f"component-mode spec requires {missing}; give them or "
                    "set an explicit 'task'"
                )
            if (self.attacks is None) == (self.threat_model is None):
                raise ValidationError(
                    "component-mode spec requires exactly one of 'attacks' "
                    "and 'threat_model'"
                )
            if self.attacks is not None and (
                not isinstance(self.attacks, dict) or not self.attacks
            ):
                raise ValidationError(
                    "'attacks' must map curve labels to attack specs"
                )
            if self.seed is None:
                raise ValidationError(
                    "component-mode specs need a 'seed' (the generic task "
                    "derives data and noise draws from it)"
                )
        else:
            if not isinstance(self.task, str) or self.task.count(":") != 1:
                raise ValidationError(
                    "task must be a 'package.module:function' string, got "
                    f"{self.task!r}"
                )
            present = [
                label
                for label, value in (
                    ("scheme", self.scheme),
                    ("attacks", self.attacks),
                    ("threat_model", self.threat_model),
                    ("dataset", self.dataset),
                )
                if value is not None
            ]
            if present:
                raise ValidationError(
                    f"raw-task specs take parameters via 'params'/'points'; "
                    f"component field(s) {present} are not allowed"
                )

    # ------------------------------------------------------------------
    # sweep expansion and engine compilation

    @property
    def task_ref(self) -> str:
        """The engine task this spec executes."""
        return self.task if self.task is not None else GENERIC_TASK

    def expand_points(self) -> list[dict[str, Any]]:
        """Per-point override dicts, grid expanded in insertion order."""
        if self.points:
            return [copy.deepcopy(dict(point)) for point in self.points]
        if self.grid:
            paths = list(self.grid)
            return [
                dict(zip(paths, combo))
                for combo in itertools.product(
                    *(self.grid[path] for path in paths)
                )
            ]
        return [{}]

    def point_params(
        self, overrides: dict[str, Any], *, validate: bool = True
    ) -> dict[str, Any]:
        """Fully-merged (and, by default, validated) params for one point."""
        if self.task is None:
            params: dict[str, Any] = {
                "dataset": copy.deepcopy(self.dataset),
                "scheme": copy.deepcopy(self.scheme),
            }
            if self.attacks is not None:
                params["attacks"] = copy.deepcopy(self.attacks)
            else:
                params["threat_model"] = copy.deepcopy(self.threat_model)
            params.update(copy.deepcopy(self.params))
        else:
            params = copy.deepcopy(self.params)
        for path, value in overrides.items():
            _apply_override(params, path, value)
        if self.task is None:
            self._check_n_records(params)
            if validate:
                self._validate_generic_params(params)
        return params

    def _check_n_records(self, params: dict[str, Any]) -> None:
        n_records = params.get("n_records")
        if not isinstance(n_records, int) or n_records < 2:
            raise ValidationError(
                "component-mode specs need an integer n_records >= 2 in "
                "'params' (or swept via the grid)"
            )

    def _validate_generic_params(self, params: dict[str, Any]) -> None:
        """Instantiate every component eagerly (parent-side)."""
        DATASETS.validate(params["dataset"])
        SCHEMES.validate(params["scheme"])
        if "attacks" in params:
            for label, attack_spec in params["attacks"].items():
                try:
                    ATTACKS.validate(attack_spec)
                except ValidationError as exc:
                    raise ValidationError(
                        f"attack {label!r}: {exc}"
                    ) from exc
        else:
            from repro.core.threat_model import ThreatModel

            ThreatModel.from_spec(params["threat_model"])

    def _overrides_touch_components(self, overrides: dict[str, Any]) -> bool:
        roots = ("dataset", "scheme", "attacks", "threat_model")
        return any(
            path.split(".", 1)[0] in roots for path in overrides
        )

    def compile_jobs(self) -> list[JobSpec]:
        """Lower the spec into engine jobs, point-major then trial.

        Component instantiation is re-validated only for points whose
        overrides touch a component spec; the base components were
        already validated at construction, so a plain parameter sweep
        (e.g. over ``n_records``) does not rebuild N copies of the
        attack battery parent-side.
        """
        jobs: list[JobSpec] = []
        for index, overrides in enumerate(self.expand_points()):
            params = self.point_params(
                overrides,
                validate=self._overrides_touch_components(overrides),
            )
            for trial in range(self.trials):
                if self.seed is None or self.seed_mode == "root":
                    path: tuple[int, ...] = ()
                else:
                    path = (index, trial)
                jobs.append(
                    JobSpec(
                        task=self.task_ref,
                        params=params,
                        seed_root=self.seed,
                        seed_path=path,
                    )
                )
        return jobs

    def x_values_hint(self, points: list[dict[str, Any]]) -> np.ndarray | None:
        """X-axis values derivable without payloads (``None`` for x_from)."""
        if self.x_values is not None:
            return np.asarray(self.x_values, dtype=np.float64)
        if self.x_param is not None:
            try:
                values = [point[self.x_param] for point in points]
            except KeyError:
                raise ConfigurationError(
                    f"x_param {self.x_param!r} is not set by every sweep "
                    "point"
                ) from None
            return np.asarray(values, dtype=np.float64)
        if self.x_from is not None:
            return None
        return np.arange(len(points), dtype=np.float64)

    # ------------------------------------------------------------------
    # serialization

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-safe dict; :meth:`from_dict` inverts it."""
        return {
            "name": self.name,
            "task": self.task,
            "scheme": copy.deepcopy(self.scheme),
            "attacks": copy.deepcopy(self.attacks),
            "threat_model": copy.deepcopy(self.threat_model),
            "dataset": copy.deepcopy(self.dataset),
            "params": copy.deepcopy(self.params),
            "grid": copy.deepcopy(self.grid),
            "points": [copy.deepcopy(point) for point in self.points],
            "trials": self.trials,
            "seed": self.seed,
            "seed_mode": self.seed_mode,
            "backend": self.backend,
            "x_param": self.x_param,
            "x_from": self.x_from,
            "x_values": None if self.x_values is None else list(self.x_values),
            "x_label": self.x_label,
            "metadata": copy.deepcopy(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ExperimentSpec":
        """Build (and eagerly validate) a spec from a plain dict."""
        if not isinstance(payload, dict):
            raise ValidationError(
                f"spec payload must be a dict, got {type(payload).__name__}"
            )
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValidationError(
                f"unknown spec field(s) {unknown}; known fields: "
                f"{sorted(known)}"
            )
        if "name" not in payload:
            raise ValidationError("spec payload is missing 'name'")
        kwargs = dict(payload)
        if kwargs.get("points") is not None:
            kwargs["points"] = tuple(kwargs["points"])
        else:
            kwargs.pop("points", None)
        # None for an optional field means "use the default".
        for key in list(kwargs):
            if kwargs[key] is None and key not in (
                "task",
                "scheme",
                "attacks",
                "threat_model",
                "dataset",
                "seed",
                "backend",
                "x_param",
                "x_from",
                "x_values",
                "x_label",
            ):
                del kwargs[key]
        return cls(**kwargs)

    def to_json(self, *, indent: int | None = 2) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Parse a JSON document into a validated spec."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"invalid spec JSON: {exc}") from exc
        return cls.from_dict(payload)

    @classmethod
    def from_file(cls, path: str | pathlib.PurePath) -> "ExperimentSpec":
        """Load and validate a ``*.json`` spec file."""
        return cls.from_json(pathlib.Path(path).read_text())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExperimentSpec):
            return NotImplemented
        return values_equal(self.to_dict(), other.to_dict())

    def __repr__(self) -> str:
        mode = "task=" + self.task_ref if self.task else "components"
        return (
            f"ExperimentSpec(name={self.name!r}, {mode}, "
            f"points={len(self.expand_points())}, trials={self.trials})"
        )
