"""Declarative experiment API — the library's front door.

Experiments are *data* here: an :class:`ExperimentSpec` names its
components by registry key (``repro.registry``), describes the sweep as
a grid or point list, and compiles straight into the parallel engine's
jobs.  Any scheme x attack x dataset combination — the paper's figures
included — is a JSON document.

>>> from repro import api
>>> spec = api.ExperimentSpec(
...     name="noise-sweep",
...     dataset={"kind": "synthetic", "spectrum": [60.0, 30.0, 5.0, 5.0]},
...     scheme={"kind": "additive", "std": 5.0},
...     attacks={"UDR": {"kind": "udr"}, "BE-DR": {"kind": "be-dr"}},
...     params={"n_records": 500},
...     grid={"scheme.std": [1.0, 5.0, 10.0]},
...     x_param="scheme.std",
...     seed=7,
... )
>>> result = api.run_spec(spec)            # doctest: +SKIP
>>> result.series["BE-DR"]                 # doctest: +SKIP

``run_spec`` also accepts a spec dict or a path to a ``*.json`` file,
and the CLI mirrors it: ``repro run spec.json``.  The paper's own
experiments live in :mod:`repro.api.builtin` as ready-made specs.
"""

from repro.api.builtin import BUILTIN_SPECS, builtin_spec
from repro.api.config import (
    DEFAULT_NOISE_STD,
    DEFAULT_RECORDS,
    DEFAULT_VARIANCE_PER_ATTRIBUTE,
    ExperimentSeries,
    SweepConfig,
)
from repro.api.result import ExperimentResult, aggregate_payloads
from repro.api.runner import Experiment, build_engine, run_spec
from repro.api.spec import GENERIC_TASK, ExperimentSpec
from repro.registry import (
    ATTACKS,
    DATASETS,
    SCHEMES,
    register_attack,
    register_dataset,
    register_scheme,
)

__all__ = [
    # spec + execution
    "ExperimentSpec",
    "ExperimentResult",
    "Experiment",
    "run_spec",
    "build_engine",
    "aggregate_payloads",
    "GENERIC_TASK",
    # built-in experiments
    "BUILTIN_SPECS",
    "builtin_spec",
    # configuration / series containers
    "DEFAULT_NOISE_STD",
    "DEFAULT_RECORDS",
    "DEFAULT_VARIANCE_PER_ATTRIBUTE",
    "ExperimentSeries",
    "SweepConfig",
    # component registries
    "SCHEMES",
    "ATTACKS",
    "DATASETS",
    "register_scheme",
    "register_attack",
    "register_dataset",
]
