"""The generic engine task executed by component-mode specs.

One function, :func:`attack_point`, is the worker for every declarative
experiment: it instantiates the dataset generator, scheme, and attack
battery from their registry specs (carried in ``params``), runs the
standard generate-disguise-attack-score pipeline, and returns the
scores.  It lives at module level so process-pool workers resolve it by
its ``"repro.api.tasks:attack_point"`` reference.

Determinism: the single engine-derived generator is consumed
sequentially — dataset draw first, then the disguise draw — the same
contract as the figure tasks, so results are bit-identical under any
executor backend.

Failed attacks do not abort the point: the pipeline records the
exception and the payload carries the nan sentinel (strict JSON has no
``NaN``) plus the error string under ``"errors"``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.pipeline import AttackPipeline
from repro.core.threat_model import ThreatModel
from repro.registry import ATTACKS, DATASETS, SCHEMES
from repro.utils.serialization import sanitize_for_json

__all__ = ["attack_point", "attack_shard"]


def attack_point(
    params: dict[str, Any], rng: np.random.Generator | None
) -> dict[str, Any]:
    """One (sweep-point, trial) of a component-driven experiment.

    params: ``dataset`` / ``scheme`` registry specs, ``attacks`` (label
    to attack spec) or ``threat_model``, and ``n_records``.  Returns
    ``{"rmse": {label: value}}`` (nan-sentinel for failures) plus an
    ``"errors"`` mapping when any attack raised.
    """
    generator = DATASETS.create(params["dataset"])
    table = generator.sample(int(params["n_records"]), rng=rng)
    scheme = SCHEMES.create(params["scheme"])
    if "attacks" in params:
        attacks = {
            label: ATTACKS.create(spec)
            for label, spec in params["attacks"].items()
        }
    else:
        attacks = ThreatModel.from_spec(params["threat_model"]).build_attacks()
    # Dataset generators may return rich tables (SyntheticDataset,
    # CensusTable); the pipeline wants the raw matrix.
    values = getattr(table, "values", table)
    report = AttackPipeline(scheme, attacks).run(
        values, rng=rng, fail_fast=False
    )
    payload: dict[str, Any] = {
        "rmse": {
            label: sanitize_for_json(report.rmse(label)) for label in attacks
        }
    }
    failures = report.failures
    if failures:
        payload["errors"] = failures
    return payload


def attack_shard(
    params: dict[str, Any], rng: np.random.Generator | None
) -> dict[str, Any]:
    """Disguise-and-attack one pre-published data shard.

    The data-plane counterpart of :func:`attack_point`: instead of
    generating records in the worker, ``params["data"]`` arrives as an
    ndarray — the engine resolves an encoded
    :class:`~repro.engine.dataplane.ArrayRef` (zero-copy under the
    shared-memory backend) before the task runs, and in-process callers
    may pass the array directly.  The scheme's noise draw comes solely
    from the engine-derived ``rng``, so results are bit-identical under
    any executor backend.

    params: ``data`` (records-by-features matrix or an ArrayRef to
    one), ``scheme`` registry spec, ``attacks`` mapping curve labels to
    attack specs.  Returns ``{"rmse": {label: value}, "rows": int}``
    plus ``"errors"`` when any attack raised.
    """
    data = np.asarray(params["data"], dtype=np.float64)
    scheme = SCHEMES.create(params["scheme"])
    attacks = {
        label: ATTACKS.create(spec)
        for label, spec in params["attacks"].items()
    }
    report = AttackPipeline(scheme, attacks).run(
        data, rng=rng, fail_fast=False
    )
    payload: dict[str, Any] = {
        "rmse": {
            label: sanitize_for_json(report.rmse(label)) for label in attacks
        },
        "rows": int(data.shape[0]),
    }
    failures = report.failures
    if failures:
        payload["errors"] = failures
    return payload
