"""Built-in experiment specs: the paper's figures and the ablations.

Every experiment this repository reproduces is expressed here as an
:class:`~repro.api.spec.ExperimentSpec` — the figure runners and
ablation runners in :mod:`repro.experiments` are thin wrappers that
build one of these specs and push it through
:func:`~repro.api.runner.run_spec`.

The specs compile to *exactly* the engine jobs the historical
hand-written runners emitted (same task references, same params, same
seed coordinates), so outputs — and cache keys — are bit-identical to
the pre-declarative code.  ``builtin_spec(name)`` is the by-name entry
point the CLI and docs use.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from typing import Any

import numpy as np

from repro.api.config import SweepConfig
from repro.api.spec import ExperimentSpec
from repro.data.spectra import decaying_spectrum, two_level_spectrum
from repro.exceptions import ConfigurationError

__all__ = [
    "BUILTIN_SPECS",
    "builtin_spec",
    "figure1_spec",
    "figure2_spec",
    "figure3_spec",
    "figure4_spec",
    "theorem52_spec",
    "ablation_selection_spec",
    "ablation_covariance_spec",
    "ablation_samplesize_spec",
    "ablation_utility_spec",
    "ablation_marginals_spec",
]

_TWO_LEVEL_TASK = "repro.experiments.tasks:two_level_trial"
_CORRELATED_TASK = "repro.experiments.tasks:correlated_noise_trial"
_THEOREM52_TASK = "repro.experiments.tasks:theorem52_check"
_SELECTION_TASK = "repro.experiments.tasks:ablation_selection_workload"
_COVARIANCE_TASK = "repro.experiments.tasks:ablation_covariance_point"
_SAMPLESIZE_TASK = "repro.experiments.tasks:ablation_samplesize_point"
_UTILITY_TASK = "repro.experiments.tasks:ablation_utility_scheme"
_MARGINALS_TASK = "repro.experiments.tasks:ablation_marginals_shape"


def _two_level_spec(
    name: str,
    x_label: str,
    sweep_points: Iterable[float],
    spectrum_for_point: Callable[[Any], np.ndarray],
    config: SweepConfig,
    metadata: dict[str, Any],
) -> ExperimentSpec:
    """Shared builder for Experiments 1-3 (i.i.d. noise, two-level spectra)."""
    points = list(sweep_points)
    if not points:
        raise ConfigurationError("sweep has no points")
    return ExperimentSpec(
        name=name,
        task=_TWO_LEVEL_TASK,
        params={
            "n_records": config.n_records,
            "noise_std": config.noise_std,
        },
        points=tuple(
            {
                "spectrum": np.asarray(
                    spectrum_for_point(point), dtype=np.float64
                ).tolist()
            }
            for point in points
        ),
        trials=config.n_trials,
        seed=config.seed,
        x_values=[float(point) for point in points],
        x_label=x_label,
        metadata=metadata,
    )


def figure1_spec(
    config: SweepConfig | None = None,
    *,
    attribute_counts: Sequence[int] | None = None,
    n_principal: int = 5,
) -> ExperimentSpec:
    """Experiment 1 / Figure 1: RMSE vs the number of attributes ``m``."""
    config = config or SweepConfig()
    if attribute_counts is None:
        attribute_counts = [5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
    counts = [int(m) for m in attribute_counts]
    if any(m < n_principal for m in counts):
        raise ConfigurationError(
            f"all attribute counts must be >= n_principal={n_principal}"
        )

    def spectrum_for(m: int) -> np.ndarray:
        if m == n_principal:
            # Degenerate first point: every component is principal.
            return two_level_spectrum(
                m, m, total_variance=config.trace_for(m),
                non_principal_value=config.non_principal_value,
            )
        return two_level_spectrum(
            m,
            n_principal,
            total_variance=config.trace_for(m),
            non_principal_value=config.non_principal_value,
        )

    return _two_level_spec(
        "figure1",
        "number of attributes (m)",
        counts,
        spectrum_for,
        config,
        {
            "n_records": config.n_records,
            "noise_std": config.noise_std,
            "n_trials": config.n_trials,
            "n_principal": n_principal,
        },
    )


def figure2_spec(
    config: SweepConfig | None = None,
    *,
    principal_counts: Sequence[int] | None = None,
    n_attributes: int = 100,
) -> ExperimentSpec:
    """Experiment 2 / Figure 2: RMSE vs the number of principals ``p``."""
    config = config or SweepConfig()
    if principal_counts is None:
        principal_counts = [2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
    counts = [int(p) for p in principal_counts]
    if any(p < 1 or p > n_attributes for p in counts):
        raise ConfigurationError(
            f"principal counts must lie in [1, {n_attributes}]"
        )
    trace = config.trace_for(n_attributes)

    def spectrum_for(p: int) -> np.ndarray:
        return two_level_spectrum(
            n_attributes,
            p,
            total_variance=trace,
            non_principal_value=config.non_principal_value,
        )

    return _two_level_spec(
        "figure2",
        "number of principal components (p)",
        counts,
        spectrum_for,
        config,
        {
            "n_records": config.n_records,
            "noise_std": config.noise_std,
            "n_trials": config.n_trials,
            "n_attributes": n_attributes,
        },
    )


def figure3_spec(
    config: SweepConfig | None = None,
    *,
    eigenvalues: Sequence[float] | None = None,
    n_attributes: int = 100,
    n_principal: int = 20,
    principal_value: float = 400.0,
) -> ExperimentSpec:
    """Experiment 3 / Figure 3: RMSE vs the non-principal eigenvalue."""
    config = config or SweepConfig()
    if eigenvalues is None:
        eigenvalues = [1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50]
    values = [float(e) for e in eigenvalues]
    if any(e <= 0.0 or e > principal_value for e in values):
        raise ConfigurationError(
            f"non-principal eigenvalues must lie in (0, {principal_value}]"
        )

    def spectrum_for(e: float) -> np.ndarray:
        return two_level_spectrum(
            n_attributes,
            n_principal,
            principal_value=principal_value,
            non_principal_value=e,
        )

    return _two_level_spec(
        "figure3",
        "eigenvalue of the non-principal components",
        values,
        spectrum_for,
        config,
        {
            "n_records": config.n_records,
            "noise_std": config.noise_std,
            "n_trials": config.n_trials,
            "n_attributes": n_attributes,
            "n_principal": n_principal,
            "principal_value": principal_value,
        },
    )


def figure4_spec(
    config: SweepConfig | None = None,
    *,
    profiles: Sequence[float] | None = None,
    n_attributes: int = 100,
    n_principal: int = 50,
) -> ExperimentSpec:
    """Experiment 4 / Figure 4: the correlated-noise defense (Section 8.2)."""
    config = config or SweepConfig()
    if profiles is None:
        profiles = [0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0]
    profile_values = [float(t) for t in profiles]
    if not profile_values:
        raise ConfigurationError("sweep has no points")
    noise_power = n_attributes * config.noise_std**2
    spectrum = two_level_spectrum(
        n_attributes,
        n_principal,
        total_variance=config.trace_for(n_attributes),
        non_principal_value=config.non_principal_value,
    )
    return ExperimentSpec(
        name="figure4",
        task=_CORRELATED_TASK,
        params={
            "spectrum": np.asarray(spectrum).tolist(),
            "n_records": config.n_records,
            "noise_power": noise_power,
        },
        points=tuple({"profile": profile} for profile in profile_values),
        trials=config.n_trials,
        seed=config.seed,
        x_from="dissimilarity",
        x_label="correlation dissimilarity (noise vs data)",
        metadata={
            "n_records": config.n_records,
            "noise_power": noise_power,
            "profiles": profile_values,
            "independent_noise_profile": 1.0,
            "n_attributes": n_attributes,
            "n_principal": n_principal,
            "n_trials": config.n_trials,
        },
    )


def theorem52_spec(
    *,
    n_attributes: int = 100,
    component_counts: Sequence[int] = (5, 20, 50, 80, 100),
    noise_std: float = 5.0,
    n_records: int = 5000,
    seed: int = 52,
) -> ExperimentSpec:
    """Empirical check of Theorem 5.2 (single root-seeded job)."""
    counts = [int(p) for p in component_counts]
    for p in counts:
        if not 1 <= p <= n_attributes:
            raise ConfigurationError(
                f"component counts must lie in [1, {n_attributes}]"
            )
    return ExperimentSpec(
        name="theorem52",
        task=_THEOREM52_TASK,
        params={
            "n_attributes": n_attributes,
            "component_counts": counts,
            "noise_std": noise_std,
            "n_records": n_records,
        },
        seed=seed,
        seed_mode="root",
        x_values=[float(p) for p in counts],
        x_label="number of principal components (p)",
        metadata={
            "n_attributes": n_attributes,
            "noise_std": noise_std,
            "n_records": n_records,
        },
    )


def ablation_selection_spec(
    *,
    n_attributes: int = 60,
    n_principal: int = 5,
    n_records: int = 2000,
    noise_std: float = 5.0,
    seed: int = 42,
) -> ExperimentSpec:
    """A2 — PCA-DR component-selection rules across spectrum shapes."""
    workloads = {
        f"two-level(m={n_attributes},p={n_principal})": two_level_spectrum(
            n_attributes,
            n_principal,
            total_variance=100.0 * n_attributes,
            non_principal_value=4.0,
        ),
        f"decaying(m={n_attributes},rate=0.9)": decaying_spectrum(
            n_attributes, decay=0.9, total_variance=100.0 * n_attributes
        ),
    }
    return ExperimentSpec(
        name="ablation-selection",
        task=_SELECTION_TASK,
        points=tuple(
            {
                "spectrum": np.asarray(spectrum).tolist(),
                "n_principal": n_principal,
                "n_records": n_records,
                "noise_std": noise_std,
                "data_seed": seed + index,
                "attack_seed": seed + 100 + index,
            }
            for index, spectrum in enumerate(workloads.values())
        ),
        x_label="workload (0=two-level, 1=decaying)",
        metadata={"workloads": list(workloads), "noise_std": noise_std},
    )


def ablation_covariance_spec(
    *,
    sample_sizes: Sequence[int] = (100, 200, 500, 1000, 2000, 5000),
    n_attributes: int = 40,
    n_principal: int = 5,
    noise_std: float = 5.0,
    seed: int = 42,
) -> ExperimentSpec:
    """A3 — Theorem-5.1 estimated covariance vs the oracle, across n."""
    sizes = [int(n) for n in sample_sizes]
    if not sizes:
        raise ConfigurationError("'sample_sizes' must be non-empty")
    spectrum = two_level_spectrum(
        n_attributes,
        n_principal,
        total_variance=100.0 * n_attributes,
        non_principal_value=4.0,
    )
    return ExperimentSpec(
        name="ablation-covariance",
        task=_COVARIANCE_TASK,
        points=tuple(
            {
                "spectrum": np.asarray(spectrum).tolist(),
                "n_records": n,
                "noise_std": noise_std,
                "data_seed": seed + index,
                "noise_seed": seed + 50 + index,
            }
            for index, n in enumerate(sizes)
        ),
        x_values=[float(n) for n in sizes],
        x_label="records (n)",
        metadata={
            "m": n_attributes,
            "p": n_principal,
            "noise_std": noise_std,
        },
    )


def ablation_samplesize_spec(
    *,
    sample_sizes: Sequence[int] = (100, 250, 500, 1000, 2500, 5000, 10000),
    n_attributes: int = 50,
    n_principal: int = 5,
    noise_std: float = 5.0,
    seed: int = 42,
) -> ExperimentSpec:
    """A4 — attack accuracy vs the number of published records."""
    sizes = [int(n) for n in sample_sizes]
    if not sizes:
        raise ConfigurationError("'sample_sizes' must be non-empty")
    spectrum = two_level_spectrum(
        n_attributes,
        n_principal,
        total_variance=100.0 * n_attributes,
        non_principal_value=4.0,
    )
    return ExperimentSpec(
        name="ablation-samplesize",
        task=_SAMPLESIZE_TASK,
        points=tuple(
            {
                "spectrum": np.asarray(spectrum).tolist(),
                "n_records": n,
                "noise_std": noise_std,
                "data_seed": seed + index,
                "attack_seed": seed + 10 + index,
            }
            for index, n in enumerate(sizes)
        ),
        x_values=[float(n) for n in sizes],
        x_label="records (n)",
        metadata={
            "m": n_attributes,
            "p": n_principal,
            "noise_std": noise_std,
        },
    )


def ablation_utility_spec(
    *,
    n_train: int = 6000,
    n_test: int = 3000,
    n_attributes: int = 8,
    noise_std: float = 4.0,
    seed: int = 0,
) -> ExperimentSpec:
    """A5 — naive-Bayes utility under the baseline and improved schemes."""
    scheme_names = ["iid", "correlated"]
    return ExperimentSpec(
        name="ablation-utility",
        task=_UTILITY_TASK,
        points=tuple(
            {
                "scheme": scheme,
                "scheme_index": index,
                "n_train": n_train,
                "n_test": n_test,
                "n_attributes": n_attributes,
                "noise_std": noise_std,
                "seed": seed,
            }
            for index, scheme in enumerate(scheme_names)
        ),
        x_label="scheme (0=iid, 1=correlated)",
        metadata={"noise_std": noise_std, "m": n_attributes},
    )


def ablation_marginals_spec(
    *,
    marginals: Sequence[str] = ("normal", "lognormal", "uniform", "bimodal"),
    n_attributes: int = 30,
    n_principal: int = 4,
    n_records: int = 2000,
    noise_std: float = 5.0,
    seed: int = 11,
) -> ExperimentSpec:
    """A6 — non-normal marginals (Section 6's normality assumption)."""
    shapes = list(marginals)
    if not shapes:
        raise ConfigurationError("'marginals' must be non-empty")
    spectrum = two_level_spectrum(
        n_attributes,
        n_principal,
        total_variance=float(n_attributes),
        non_principal_value=0.04,
    )
    return ExperimentSpec(
        name="ablation-marginals",
        task=_MARGINALS_TASK,
        points=tuple(
            {
                "spectrum": np.asarray(spectrum).tolist(),
                "marginal": shape,
                "n_records": n_records,
                "noise_std": noise_std,
                "copula_seed": seed,
                "sample_seed": seed + index + 1,
                "attack_seed": seed + 50 + index,
            }
            for index, shape in enumerate(shapes)
        ),
        x_label="marginal shape index",
        metadata={
            "marginals": shapes,
            "noise_std": noise_std,
            "m": n_attributes,
        },
    )


#: By-name catalog of the built-in spec builders.
BUILTIN_SPECS: dict[str, Callable[..., ExperimentSpec]] = {
    "figure1": figure1_spec,
    "figure2": figure2_spec,
    "figure3": figure3_spec,
    "figure4": figure4_spec,
    "theorem52": theorem52_spec,
    "ablation-selection": ablation_selection_spec,
    "ablation-covariance": ablation_covariance_spec,
    "ablation-samplesize": ablation_samplesize_spec,
    "ablation-utility": ablation_utility_spec,
    "ablation-marginals": ablation_marginals_spec,
}


def builtin_spec(name: str, *args: Any, **kwargs: Any) -> ExperimentSpec:
    """Build a built-in spec by experiment name."""
    try:
        builder = BUILTIN_SPECS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown built-in experiment {name!r}; available: "
            f"{sorted(BUILTIN_SPECS)}"
        ) from None
    return builder(*args, **kwargs)
