"""Experiment configuration and result containers.

(Moved here from ``repro.experiments.config``, which remains as a
deprecation shim — the sweep knobs and the series container are part of
the public :mod:`repro.api` surface now.)

Defaults are chosen to reproduce the paper's curve *shapes* at laptop
scale (the paper does not publish its exact sample counts):

* ``DEFAULT_NOISE_STD = 5`` — puts the NDR baseline at RMSE 5 and UDR in
  the 4.3-4.8 band the figures show.
* ``DEFAULT_VARIANCE_PER_ATTRIBUTE = 100`` — the trace is ``100 * m``
  at every sweep point (Eq. 12), keeping UDR flat like the figures.
* ``DEFAULT_RECORDS = 2000`` — large enough that Theorem 5.1's
  estimated covariance is close to the truth, small enough that every
  figure regenerates in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.serialization import values_equal
from repro.utils.validation import check_in_range, check_positive_int

__all__ = [
    "DEFAULT_NOISE_STD",
    "DEFAULT_RECORDS",
    "DEFAULT_VARIANCE_PER_ATTRIBUTE",
    "SweepConfig",
    "ExperimentSeries",
]

DEFAULT_NOISE_STD = 5.0
DEFAULT_RECORDS = 2000
DEFAULT_VARIANCE_PER_ATTRIBUTE = 100.0


@dataclass(frozen=True)
class SweepConfig:
    """Shared knobs for the figure-regenerating sweeps.

    Attributes
    ----------
    n_records:
        Rows per generated dataset.
    noise_std:
        Per-attribute noise standard deviation ``sigma`` of the baseline
        i.i.d. scheme (Experiment 4 re-uses ``m * sigma^2`` as the total
        correlated-noise power).
    variance_per_attribute:
        Average attribute variance; the spectrum trace is this times
        ``m`` (Eq. 12's UDR-flattening constraint).
    non_principal_value:
        The small eigenvalue of the two-level spectra.
    n_trials:
        Independent repetitions averaged per sweep point (fresh data,
        noise, and eigenbasis each trial).
    seed:
        Root seed; trials and sweep points get independent spawned
        generators, so adding sweep points never reshuffles existing
        ones.
    """

    n_records: int = DEFAULT_RECORDS
    noise_std: float = DEFAULT_NOISE_STD
    variance_per_attribute: float = DEFAULT_VARIANCE_PER_ATTRIBUTE
    non_principal_value: float = 4.0
    n_trials: int = 1
    seed: int = 2005

    def __post_init__(self) -> None:
        check_positive_int(self.n_records, "n_records", minimum=2)
        check_in_range(
            self.noise_std, "noise_std", low=0.0, inclusive_low=False
        )
        check_in_range(
            self.variance_per_attribute,
            "variance_per_attribute",
            low=0.0,
            inclusive_low=False,
        )
        check_in_range(
            self.non_principal_value,
            "non_principal_value",
            low=0.0,
            inclusive_low=False,
        )
        check_positive_int(self.n_trials, "n_trials")
        check_positive_int(self.seed, "seed", minimum=0)

    def trace_for(self, n_attributes: int) -> float:
        """Spectrum trace at a sweep point with ``m`` attributes."""
        return self.variance_per_attribute * n_attributes


@dataclass(frozen=True, eq=False)
class ExperimentSeries:
    """The regenerated data behind one figure.

    Attributes
    ----------
    name:
        Experiment identifier, e.g. ``"figure1"``.
    x_label:
        Meaning of the sweep values (the figure's x-axis).
    x_values:
        Sweep positions, shape ``(k,)``.
    series:
        Method name to RMSE values, each shape ``(k,)`` — the figure's
        curves.
    metadata:
        Fixed parameters of the sweep (for the report header) and any
        per-point extras (e.g. Experiment 4's measured dissimilarities).
    """

    name: str
    x_label: str
    x_values: np.ndarray
    series: dict[str, np.ndarray]
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        x = np.asarray(self.x_values, dtype=np.float64)
        object.__setattr__(self, "x_values", x)
        converted = {}
        for key, values in self.series.items():
            array = np.asarray(values, dtype=np.float64)
            if array.shape != x.shape:
                raise ConfigurationError(
                    f"series {key!r} has shape {array.shape}, x-axis has "
                    f"{x.shape}"
                )
            converted[key] = array
        object.__setattr__(self, "series", converted)

    def __eq__(self, other: object) -> bool:
        # Array-aware equality (the generated one raises on ndarrays).
        if not isinstance(other, ExperimentSeries):
            return NotImplemented
        return (
            self.name == other.name
            and self.x_label == other.x_label
            and values_equal(self.x_values, other.x_values)
            and values_equal(self.series, other.series)
            and values_equal(self.metadata, other.metadata)
        )

    @property
    def methods(self) -> list[str]:
        """Curve names in insertion order."""
        return list(self.series)

    def curve(self, method: str) -> np.ndarray:
        """RMSE values of one method across the sweep."""
        try:
            return self.series[method]
        except KeyError:
            raise KeyError(
                f"no series {method!r}; available: {self.methods}"
            ) from None

    def final_gap(self, better: str, worse: str) -> float:
        """RMSE advantage of one method over another at the last point."""
        return float(self.curve(worse)[-1] - self.curve(better)[-1])

    def __repr__(self) -> str:
        return (
            f"ExperimentSeries(name={self.name!r}, "
            f"points={self.x_values.size}, methods={self.methods})"
        )
