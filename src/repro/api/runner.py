"""The front door: run a spec (object, dict, or JSON file) end to end.

:func:`run_spec` compiles an :class:`~repro.api.spec.ExperimentSpec`
into engine jobs, executes them (serial, process-pool, cached — all of
the engine's machinery applies untouched), and aggregates the payloads
into an :class:`~repro.api.result.ExperimentResult`.

:class:`Experiment` is the object-shaped facade over the same path,
with ``from_json`` / ``from_file`` constructors for specs stored as
JSON documents.
"""

from __future__ import annotations

import os
import pathlib
from typing import Any

from repro.api.result import ExperimentResult
from repro.api.spec import ExperimentSpec
from repro.engine import (
    Engine,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    create_backend,
)
from repro.engine.executor import Executor
from repro.engine.jobs import JobSpec
from repro.engine.progress import ProgressReporter
from repro.exceptions import ValidationError

__all__ = ["Experiment", "build_engine", "run_spec"]


def build_engine(
    *,
    jobs: int = 1,
    backend: str | None = None,
    cache: ResultCache | bool | str | os.PathLike[str] | None = False,
    progress: ProgressReporter | None = None,
    fail_fast: bool = True,
) -> Engine:
    """An engine from the common knobs.

    Parameters
    ----------
    jobs:
        ``1`` runs in-process; any other value selects the process-pool
        backend (``0`` = autodetect worker count).  Results are
        bit-identical either way.
    backend:
        Executor backend name (see :func:`repro.engine.backend_names`),
        created via :func:`repro.engine.create_backend` with ``jobs``
        workers.  ``None`` (default) keeps the historical mapping:
        ``jobs == 1`` is in-process serial, anything else is the
        pickle-transport process pool.
    cache:
        ``False``/``None`` (default) disables on-disk caching — the
        same default as ``run_spec(spec)`` with no keywords, so adding
        ``jobs=`` or ``progress=`` never silently turns persistence on.
        ``True`` selects the default cache directory; a path or a ready
        :class:`ResultCache` selects a specific one.
    progress:
        Optional :class:`~repro.engine.progress.ProgressReporter`.
    fail_fast:
        ``True`` (default) raises on the first job failure; ``False``
        drains the grid, surfacing failures as failed
        :class:`~repro.engine.jobs.JobResult` objects.
    """
    executor: Executor
    if backend is not None:
        executor = create_backend(backend, workers=jobs)
    elif jobs == 1:
        executor = SerialExecutor()
    else:
        executor = ParallelExecutor(workers=jobs)
    if cache is True:
        result_cache = ResultCache()
    elif cache is False or cache is None:
        result_cache = None
    elif isinstance(cache, ResultCache):
        result_cache = cache
    else:
        result_cache = ResultCache(cache)
    return Engine(
        executor=executor,
        cache=result_cache,
        progress=progress,
        fail_fast=fail_fast,
    )


def _coerce_spec(spec: Any) -> ExperimentSpec:
    if isinstance(spec, ExperimentSpec):
        return spec
    if isinstance(spec, dict):
        return ExperimentSpec.from_dict(spec)
    if isinstance(spec, (str, os.PathLike)):
        return ExperimentSpec.from_file(spec)
    raise ValidationError(
        "run_spec expects an ExperimentSpec, a spec dict, or a path to a "
        f"spec JSON file; got {type(spec).__name__}"
    )


def run_spec(
    spec: Any, *, engine: Engine | None = None, **engine_kwargs: Any
) -> ExperimentResult:
    """Execute an experiment spec and return its structured result.

    Parameters
    ----------
    spec:
        An :class:`ExperimentSpec`, a plain spec dict, or a path to a
        spec JSON file.
    engine:
        A preconfigured engine; mutually exclusive with the keyword
        shortcuts below.
    engine_kwargs:
        ``jobs`` / ``backend`` / ``cache`` / ``progress`` / ``fail_fast``
        forwarded to :func:`build_engine` when no engine is given.  A
        spec's own ``backend`` field acts as the default for
        ``backend``; an explicit keyword overrides it.
    """
    if engine is not None and engine_kwargs:
        raise ValidationError(
            "pass either a prebuilt 'engine' or engine keywords, not both"
        )
    experiment_spec = _coerce_spec(spec)
    if engine is None:
        if experiment_spec.backend is not None:
            engine_kwargs.setdefault("backend", experiment_spec.backend)
        engine = build_engine(**engine_kwargs) if engine_kwargs else Engine()
    results = engine.run(experiment_spec.compile_jobs())
    return ExperimentResult.from_job_results(experiment_spec, results)


class Experiment:
    """Object facade: a spec plus the engine configuration to run it.

    >>> from repro.api import Experiment
    >>> experiment = Experiment.from_file("examples/specs/mini.json")
    >>> result = experiment.run()          # doctest: +SKIP
    """

    def __init__(self, spec: Any, *, engine: Engine | None = None) -> None:
        self.spec = _coerce_spec(spec)
        self.engine = engine

    @classmethod
    def from_dict(cls, payload: dict[str, Any], **kwargs: Any) -> "Experiment":
        """From a plain spec dict."""
        return cls(ExperimentSpec.from_dict(payload), **kwargs)

    @classmethod
    def from_json(cls, text: str, **kwargs: Any) -> "Experiment":
        """From a JSON spec document."""
        return cls(ExperimentSpec.from_json(text), **kwargs)

    @classmethod
    def from_file(
        cls, path: str | os.PathLike[str], **kwargs: Any
    ) -> "Experiment":
        """From a ``*.json`` spec file."""
        return cls(ExperimentSpec.from_file(pathlib.Path(path)), **kwargs)

    @property
    def name(self) -> str:
        """The spec's experiment name."""
        return self.spec.name

    def jobs(self) -> list[JobSpec]:
        """The engine jobs this experiment compiles to."""
        return self.spec.compile_jobs()

    def run(
        self, *, engine: Engine | None = None, **engine_kwargs: Any
    ) -> ExperimentResult:
        """Execute and aggregate (see :func:`run_spec`)."""
        chosen = engine if engine is not None else self.engine
        if chosen is not None and engine_kwargs:
            raise ValidationError(
                "pass either a prebuilt 'engine' or engine keywords, "
                "not both"
            )
        return run_spec(self.spec, engine=chosen, **engine_kwargs)

    def __repr__(self) -> str:
        return f"Experiment({self.spec!r})"
