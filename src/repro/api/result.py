"""Structured results of a declarative experiment run.

:class:`ExperimentResult` pairs the spec that produced it with the raw
per-(point, trial) engine payloads and the aggregated curves.  The
aggregation reproduces the historical runners' arithmetic exactly —
accumulate trial payloads in job order into zero-initialized arrays,
then divide by the trial count — so a spec-driven run is bit-identical
to the hand-written loop it replaced.

Payload conventions understood by the aggregator:

* ``{"rmse": {label: value}}`` — nested numeric dicts become one curve
  per inner label (the figure tasks' shape).
* flat numeric keys — one curve per key (the utility ablation's shape).
* list values — only for single-job specs; the list *is* the curve
  (the theorem-5.2 shape), with x positions from the spec's
  ``x_values``.
* the spec's ``x_from`` key is averaged into the x-axis instead of a
  curve (figure 4's measured dissimilarity).
* nan sentinels (see :mod:`repro.utils.serialization`) decode to
  ``nan``; non-numeric leaves (e.g. error strings) are skipped.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.api.config import ExperimentSeries
from repro.api.spec import ExperimentSpec
from repro.exceptions import ValidationError
from repro.utils.serialization import (
    NAN_SENTINEL,
    NEG_INF_SENTINEL,
    POS_INF_SENTINEL,
    restore_from_json,
    sanitize_for_json,
    values_equal,
)

__all__ = ["ExperimentResult", "aggregate_payloads"]

_FLOAT_SENTINELS = (NAN_SENTINEL, POS_INF_SENTINEL, NEG_INF_SENTINEL)


def _numeric(value: Any) -> float | int | None:
    """The float a payload leaf contributes, or ``None`` to skip it."""
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str) and value in _FLOAT_SENTINELS:
        return restore_from_json(value)
    return None


def aggregate_payloads(
    spec: ExperimentSpec, payloads: list[list[dict[str, Any]]]
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Aggregate raw payloads into ``(x_values, series)`` curves.

    ``payloads[point][trial]`` must hold the engine payload of that job.
    """
    n_points = len(payloads)
    if n_points == 0:
        raise ValidationError("experiment produced no points")
    trials = spec.trials
    single_job = n_points == 1 and trials == 1
    series: dict[str, np.ndarray] = {}
    averaged: set[str] = set()
    x_accumulator = np.zeros(n_points) if spec.x_from is not None else None

    def accumulate(label: str, point: int, value: Any) -> None:
        number = _numeric(value)
        if number is None:
            return
        if label not in series:
            series[label] = np.zeros(n_points)
            averaged.add(label)
        series[label][point] += number

    for point in range(n_points):
        trial_payloads = payloads[point]
        if len(trial_payloads) != trials:
            raise ValidationError(
                f"point {point} has {len(trial_payloads)} payloads, "
                f"expected {trials}"
            )
        for payload in trial_payloads:
            if spec.x_from is not None and spec.x_from not in payload:
                # Silent zeros on a typoed/missing key would produce a
                # wrong-but-plausible x-axis.
                raise ValidationError(
                    f"x_from key {spec.x_from!r} missing from a point-"
                    f"{point} payload; payload keys: {sorted(payload)}"
                )
            for key, value in payload.items():
                if spec.x_from is not None and key == spec.x_from:
                    number = _numeric(value)
                    if number is None:
                        raise ValidationError(
                            f"x_from key {spec.x_from!r} has non-numeric "
                            f"payload value {value!r}"
                        )
                    x_accumulator[point] += number
                    continue
                if isinstance(value, dict):
                    for label, entry in value.items():
                        accumulate(label, point, entry)
                elif isinstance(value, list):
                    if not single_job:
                        # List payloads are whole curves; summing or
                        # averaging them across points/trials has no
                        # defined meaning, and dropping them silently
                        # hid real task bugs.
                        raise ValidationError(
                            f"payload key {key!r} is list-valued, which "
                            "is only supported for single-job specs "
                            "(one point, one trial); got "
                            f"{n_points} point(s) x {trials} trial(s)"
                        )
                    series[key] = np.asarray(
                        restore_from_json(value), dtype=np.float64
                    )
                else:
                    accumulate(key, point, value)

    for label in averaged:
        series[label] /= trials
    if not series:
        raise ValidationError(
            "no numeric payload values to aggregate into series"
        )

    x_values = spec.x_values_hint(spec.expand_points())
    if x_values is None:
        x_accumulator /= trials
        x_values = x_accumulator
    return x_values, series


@dataclass(frozen=True, eq=False)
class ExperimentResult:
    """Aggregated curves plus the raw payloads behind them.

    Attributes
    ----------
    spec:
        The validated spec that produced this result.
    x_values:
        Sweep positions, shape ``(k,)``.
    series:
        Curve label to values, each shape ``(k,)``.
    payloads:
        Raw engine payloads, ``payloads[point][trial]``.
    stats:
        Execution counters: ``jobs``, ``cached``, ``duration`` (seconds
        of task time, cached jobs counted at their original cost).
    """

    spec: ExperimentSpec
    x_values: np.ndarray
    series: dict[str, np.ndarray]
    payloads: tuple[tuple[dict[str, Any], ...], ...]
    stats: dict[str, Any]

    @classmethod
    def from_job_results(
        cls, spec: ExperimentSpec, results: Any
    ) -> "ExperimentResult":
        """Group and aggregate the engine's in-order job results."""
        results = list(results)
        points = spec.expand_points()
        expected = len(points) * spec.trials
        if len(results) != expected:
            raise ValidationError(
                f"spec {spec.name!r} compiled to {expected} jobs but got "
                f"{len(results)} results"
            )
        payloads = [
            [
                results[point * spec.trials + trial].values
                for trial in range(spec.trials)
            ]
            for point in range(len(points))
        ]
        x_values, series = aggregate_payloads(spec, payloads)
        stats = {
            "jobs": len(results),
            "cached": sum(1 for result in results if result.cached),
            "duration": float(
                sum(result.duration for result in results)
            ),
        }
        return cls(
            spec=spec,
            x_values=x_values,
            series=series,
            payloads=tuple(tuple(row) for row in payloads),
            stats=stats,
        )

    @property
    def methods(self) -> list[str]:
        """Curve labels in insertion order."""
        return list(self.series)

    def curve(self, label: str) -> np.ndarray:
        """One aggregated curve."""
        try:
            return self.series[label]
        except KeyError:
            raise KeyError(
                f"no series {label!r}; available: {self.methods}"
            ) from None

    def to_series(self) -> ExperimentSeries:
        """The result as the classic reporting/plotting container."""
        if self.spec.x_label is not None:
            x_label = self.spec.x_label
        elif self.spec.x_param is not None:
            x_label = self.spec.x_param
        elif self.spec.x_from is not None:
            x_label = self.spec.x_from
        else:
            x_label = "sweep point"
        return ExperimentSeries(
            name=self.spec.name,
            x_label=x_label,
            x_values=self.x_values,
            series=dict(self.series),
            metadata=dict(self.spec.metadata),
        )

    def to_dict(self) -> dict[str, Any]:
        """Strict-JSON encoding (nan-safe); :meth:`from_dict` inverts."""
        return {
            "spec": self.spec.to_dict(),
            "x_values": sanitize_for_json(self.x_values),
            "series": {
                label: sanitize_for_json(values)
                for label, values in self.series.items()
            },
            "payloads": sanitize_for_json(
                [list(row) for row in self.payloads]
            ),
            "stats": sanitize_for_json(self.stats),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            spec=ExperimentSpec.from_dict(payload["spec"]),
            x_values=np.asarray(
                restore_from_json(payload["x_values"]), dtype=np.float64
            ),
            series={
                label: np.asarray(restore_from_json(values), dtype=np.float64)
                for label, values in payload["series"].items()
            },
            payloads=tuple(
                tuple(row) for row in payload.get("payloads", [])
            ),
            stats=restore_from_json(payload.get("stats", {})),
        )

    def to_json(self, *, indent: int | None = None) -> str:
        """The result as strict JSON."""
        return json.dumps(self.to_dict(), indent=indent, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Parse :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExperimentResult):
            return NotImplemented
        return (
            self.spec == other.spec
            and values_equal(self.x_values, other.x_values)
            and values_equal(self.series, other.series)
            and values_equal(list(self.payloads), list(other.payloads))
        )

    def __repr__(self) -> str:
        return (
            f"ExperimentResult(name={self.spec.name!r}, "
            f"points={self.x_values.size}, methods={self.methods})"
        )
