"""Allow ``python -m repro <figure>`` as a CLI alias."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
