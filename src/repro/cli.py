"""Command-line interface: run experiment specs and regenerate the paper.

Usage (after ``pip install -e .``)::

    repro run my_sweep.json           # execute a JSON ExperimentSpec
    repro run spec.json --jobs 4      # parallel across 4 worker processes
    repro run spec.json --json        # structured ExperimentResult JSON
    repro run spec.json --trace t.json  # record spans + run manifest
    repro run spec.json --metrics m.json  # live metrics ring + .prom text
    repro trace t.json                # render a recorded trace document
    repro trace diff a.json b.json    # span-aligned cross-run deltas
    repro metrics m.json              # inspect a metrics ring file
    repro watch m.json                # live dashboard tailing the ring
    repro watch m.json --once         # one deterministic frame (CI logs)
    repro bench history results/*.json  # per-case bench timelines
    repro check src/ --fix-hints      # determinism/parallel-safety lints
    repro check --list-rules          # the registered rule catalog
    repro list schemes                # registered randomization schemes
    repro list attacks                # registered reconstruction attacks
    repro list datasets               # registered dataset generators
    repro figure1                     # built-in: Figure 1 at default scale
    repro figure4 --trials 3          # average 3 runs per sweep point
    repro figure2 --plot              # add an ASCII line chart
    repro theorem52                   # Theorem 5.2 numeric check
    repro ablation-selection          # DESIGN.md ablations A2-A6
    python -m repro figure2           # module form

Every experiment — a user spec or a built-in — executes through
:mod:`repro.api` and :mod:`repro.engine`.  ``--jobs N`` selects the
process-pool backend (``0`` = autodetect); results are bit-identical
for any worker count.  Completed jobs are cached on disk
(``--cache-dir``, default ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``) so
rerunning a sweep skips finished work; ``--no-cache`` disables that.

Output is the same text table the benchmark harness prints (plus an
optional terminal plot), or the full structured result with ``--json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.api.builtin import builtin_spec
from repro.api.config import DEFAULT_NOISE_STD, DEFAULT_RECORDS, SweepConfig
from repro.api.runner import run_spec
from repro.api.spec import ExperimentSpec
from repro.engine import (
    Engine,
    ParallelExecutor,
    ProgressReporter,
    ResultCache,
    SerialExecutor,
    ThroughputReporter,
    TraceReporter,
    backend_names,
    create_backend,
)
from repro.exceptions import ReproError
from repro.experiments.ascii_plot import plot_series
from repro.experiments.reporting import render_series
from repro.registry import ATTACKS, DATASETS, SCHEMES
from repro.telemetry import (
    Recorder,
    build_manifest,
    diff_traces,
    render_diff,
    render_openmetrics,
    render_trace,
    run_health,
    trace,
    validate_metrics,
    validate_trace,
    watch_loop,
    write_trace,
)

__all__ = ["main", "build_parser"]

_FIGURES = {
    "figure1": "RMSE vs number of attributes (Experiment 1)",
    "figure2": "RMSE vs number of principal components (Experiment 2)",
    "figure3": "RMSE vs non-principal eigenvalue (Experiment 3)",
    "figure4": "RMSE vs noise correlation dissimilarity (Experiment 4)",
}

_ABLATIONS = {
    "ablation-selection": "A2: PCA-DR component-selection rules",
    "ablation-covariance": "A3: Theorem-5.1 estimate vs oracle covariance",
    "ablation-samplesize": "A4: attack accuracy vs number of records",
    "ablation-utility": "A5: naive-Bayes utility of disguised data",
    "ablation-marginals": "A6: non-normal marginals (Gaussian copula)",
}

_REGISTRIES = {
    "schemes": SCHEMES,
    "attacks": ATTACKS,
    "datasets": DATASETS,
}


def _worker_count(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 0 (0 = autodetect), got {value}"
        )
    return value


def _add_engine_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--jobs",
        type=_worker_count,
        default=1,
        help=(
            "worker processes (1 = in-process serial, 0 = autodetect "
            "CPU count); results are identical for any value"
        ),
    )
    sub.add_argument(
        "--backend",
        default=None,
        choices=backend_names(),
        help=(
            "executor backend for the sweep (default: serial for "
            "--jobs 1, otherwise the pickle-transport process pool; "
            "'shared-memory' ships large arrays as zero-copy shm "
            "segments); results are bit-identical for every backend"
        ),
    )
    sub.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk result cache",
    )
    sub.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "result-cache directory (default $REPRO_CACHE_DIR or "
            "~/.cache/repro)"
        ),
    )
    sub.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "record the run as a repro-trace/v1 JSON document (spans, "
            "counters, run manifest) at PATH; view it with "
            "'repro trace PATH'"
        ),
    )
    _add_metrics_arguments(sub)


def _add_metrics_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help=(
            "export live run metrics while executing: a repro-metrics/v1 "
            "JSON ring file at PATH plus an OpenMetrics text sibling "
            "(PATH with a .prom suffix), refreshed every "
            "--metrics-interval seconds; view with 'repro metrics PATH'"
        ),
    )
    sub.add_argument(
        "--metrics-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="seconds between metrics snapshots (default 1.0)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the figures of 'Deriving Private Information from "
            "Randomized Data' (Huang, Du, Chen; SIGMOD 2005) and run "
            "declarative experiment specs."
        ),
    )
    subparsers = parser.add_subparsers(dest="experiment", required=True)

    sub = subparsers.add_parser(
        "run", help="execute an ExperimentSpec JSON file"
    )
    sub.add_argument("spec", help="path to the spec (*.json)")
    sub.add_argument(
        "--plot",
        action="store_true",
        help="also draw the series as an ASCII line chart",
    )
    sub.add_argument(
        "--json",
        action="store_true",
        help="print the structured ExperimentResult as JSON",
    )
    _add_engine_arguments(sub)

    sub = subparsers.add_parser("list", help="list registered components")
    sub.add_argument(
        "registry",
        choices=sorted(_REGISTRIES),
        help="which component family to list",
    )

    for name, help_text in _FIGURES.items():
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument(
            "--records",
            type=int,
            default=DEFAULT_RECORDS,
            help=f"rows per generated dataset (default {DEFAULT_RECORDS})",
        )
        sub.add_argument(
            "--noise-std",
            type=float,
            default=DEFAULT_NOISE_STD,
            help=f"noise standard deviation (default {DEFAULT_NOISE_STD})",
        )
        sub.add_argument(
            "--trials",
            type=int,
            default=1,
            help="independent repetitions averaged per sweep point",
        )
        sub.add_argument(
            "--seed",
            type=int,
            default=2005,
            help="root random seed (default 2005)",
        )
        sub.add_argument(
            "--plot",
            action="store_true",
            help="also draw the series as an ASCII line chart",
        )
        _add_engine_arguments(sub)
    for name, help_text in _ABLATIONS.items():
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("--plot", action="store_true",
                         help="also draw an ASCII line chart")
        _add_engine_arguments(sub)
    sub = subparsers.add_parser(
        "theorem52", help="verify Theorem 5.2 numerically"
    )
    _add_engine_arguments(sub)

    sub = subparsers.add_parser(
        "bench",
        help="time the hot paths and figure pipelines",
        description=(
            "Run the registered benchmarks (hot-path micro-benchmarks "
            "and full figure pipelines through the engine), print a "
            "timing table, optionally emit a machine-readable "
            "BENCH_*.json, and compare against a baseline payload."
        ),
    )
    sub.add_argument(
        "--json",
        nargs="?",
        const="BENCH_RESULTS.json",
        default=None,
        metavar="PATH",
        help=(
            "write the machine-readable payload to PATH "
            "(default BENCH_RESULTS.json when the flag is given bare)"
        ),
    )
    sub.add_argument(
        "--filter",
        default=None,
        metavar="TOKEN",
        help=(
            "only run benchmarks whose name contains TOKEN or whose "
            "tags include it (e.g. 'smoke', 'large', 'em_recon')"
        ),
    )
    sub.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="timed repetitions per benchmark after one warmup (default 3)",
    )
    sub.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=(
            "baseline BENCH_*.json to compare against (default: the "
            "committed benchmarks/baselines/BENCH_BASELINE.json when "
            "run inside the repository)"
        ),
    )
    sub.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the baseline comparison entirely",
    )
    sub.add_argument(
        "--max-regression",
        type=float,
        default=1.5,
        metavar="RATIO",
        help=(
            "flag benchmarks running RATIO times slower than the "
            "baseline (default 1.5)"
        ),
    )
    sub.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit non-zero when any benchmark exceeds --max-regression",
    )
    sub.add_argument(
        "--list",
        action="store_true",
        help="list the registered benchmarks (with --filter) and exit",
    )
    sub.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "record per-case bench.case spans to a repro-trace/v1 "
            "document at PATH"
        ),
    )
    _add_metrics_arguments(sub)
    sub.add_argument(
        "action",
        nargs="*",
        default=[],
        metavar="history RESULTS...",
        help=(
            "optional subcommand: 'history RESULTS...' folds any number "
            "of BENCH_*.json payloads into per-case timelines with "
            "regression flagging against the baseline"
        ),
    )

    sub = subparsers.add_parser(
        "check",
        help="static determinism & parallel-safety analysis",
        description=(
            "Run the AST-based rule catalog (seeded-RNG flow, pickle-"
            "safe tasks, array-aware dataclass equality, clock-free "
            "kernels, lock hygiene, registry spec signatures) over "
            "source trees.  Any unsuppressed finding fails the check; "
            "silence a deliberate violation with an inline "
            "'# repro: ignore[rule-key] justification' comment."
        ),
    )
    sub.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to scan (default: src)",
    )
    sub.add_argument(
        "--rules",
        default=None,
        metavar="KEYS",
        help=(
            "comma-separated rule keys to run (default: every "
            "registered rule; see --list-rules)"
        ),
    )
    sub.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help=(
            "write the repro-check/v1 JSON report to PATH "
            "(stdout when the flag is given bare)"
        ),
    )
    sub.add_argument(
        "--fix-hints",
        action="store_true",
        help="show each fired rule's suggested fix under its findings",
    )
    sub.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules (key, severity, scope) and exit",
    )

    sub = subparsers.add_parser(
        "trace",
        help="inspect or diff recorded repro-trace/v1 documents",
        description=(
            "Render the span tree, self-time aggregate, slowest-job "
            "chart, and manifest summary of a trace recorded with "
            "'repro run --trace' or 'repro bench --trace'.  "
            "'repro trace diff A B' instead aligns two traces span by "
            "span and reports per-span duration deltas (self-time "
            "attributed) plus the manifest changes between the runs."
        ),
    )
    sub.add_argument(
        "file",
        nargs="+",
        help=(
            "path to the trace JSON document, or 'diff' followed by "
            "two trace paths to compare"
        ),
    )
    sub.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help=(
            "number of slowest jobs to chart, or of span deltas to "
            "list in diff mode (default 10)"
        ),
    )
    sub.add_argument(
        "--depth",
        type=int,
        default=None,
        metavar="D",
        help="limit the span tree to D levels (default: unlimited)",
    )
    sub.add_argument(
        "--validate",
        action="store_true",
        help="check the document against the schema and exit (no render)",
    )

    sub = subparsers.add_parser(
        "metrics",
        help="inspect a repro-metrics/v1 ring file",
        description=(
            "Summarize a metrics ring file written by --metrics: "
            "snapshot count and span, the latest engine progress, and "
            "the latest snapshot's counters and gauges."
        ),
    )
    sub.add_argument("file", help="path to the metrics JSON document")
    sub.add_argument(
        "--validate",
        action="store_true",
        help="check the document against the schema and exit (no render)",
    )
    sub.add_argument(
        "--prom",
        action="store_true",
        help="print the latest snapshot as OpenMetrics text instead",
    )

    sub = subparsers.add_parser(
        "watch",
        help="live terminal dashboard over a metrics ring file",
        description=(
            "Tail the repro-metrics/v1 ring a running sweep exports "
            "with --metrics and redraw a dashboard each interval: "
            "progress bar with rate and ETA, parent/worker RSS, and "
            "the per-kernel convergence state fed by the kernel.* "
            "heartbeat gauges.  Works equally on a finished ring "
            "(the final state renders, marked stale); --once prints "
            "a single frame and exits, for CI logs."
        ),
    )
    sub.add_argument("file", help="path to the metrics JSON ring file")
    sub.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="seconds between redraws (default 1.0)",
    )
    sub.add_argument(
        "--once",
        action="store_true",
        help="render one frame and exit instead of looping",
    )
    return parser


def _engine_from_args(args) -> Engine:
    """Build the execution engine the selected flags describe."""
    jobs = getattr(args, "jobs", 1)
    backend = getattr(args, "backend", None)
    if backend is not None:
        executor = create_backend(backend, workers=jobs)
    elif jobs == 1:
        executor = SerialExecutor()
    else:
        executor = ParallelExecutor(workers=jobs)
    cache = None
    if not getattr(args, "no_cache", False):
        cache = ResultCache(getattr(args, "cache_dir", None))
    if sys.stderr.isatty():
        progress = ThroughputReporter()
    else:
        progress = ProgressReporter()
    return Engine(executor=executor, cache=cache, progress=progress)


def _execute_spec(spec, args):
    """Run a spec through the engine, honoring ``--trace`` when given.

    With ``--trace PATH`` the whole run is recorded — engine, pipeline,
    and kernel spans plus cache counters — and written as a validated
    ``repro-trace/v1`` document whose manifest joins the spec's seed
    lineage with the per-job timings collected by a
    :class:`~repro.engine.progress.TraceReporter`.
    """
    engine = _engine_from_args(args)
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    if trace_path is None and metrics_path is None:
        return run_spec(spec, engine=engine)
    recorder = Recorder()
    reporter = TraceReporter(inner=engine.progress)
    engine.progress = reporter
    # One recorder feeds everything: the trace document, the live
    # metrics exporter, and the resource sampler's gauges.
    with trace.recording(recorder):
        with run_health(
            recorder,
            metrics_path=metrics_path,
            interval=getattr(args, "metrics_interval", 1.0),
        ):
            result = run_spec(spec, engine=engine)
    if metrics_path is not None:
        print(f"wrote metrics {metrics_path}", file=sys.stderr)
    if trace_path is not None:
        manifest = build_manifest(
            spec=spec,
            rows=reporter.rows,
            extra={"command": "run", "elapsed": reporter.elapsed},
        )
        written = write_trace(
            recorder.to_document(manifest=manifest), trace_path
        )
        print(f"wrote trace {written}", file=sys.stderr)
    return result


def _list_components(args) -> int:
    registry = _REGISTRIES[args.registry]
    for key in registry.names():
        print(f"{key:<16} {registry.get(key).__name__}")
    return 0


def _run_spec_file(args) -> int:
    try:
        spec = ExperimentSpec.from_file(args.spec)
    except FileNotFoundError:
        print(f"error: spec file not found: {args.spec}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: invalid spec: {exc}", file=sys.stderr)
        return 2
    if getattr(args, "backend", None) is None and spec.backend is not None:
        # The spec's own backend hint applies unless --backend overrides.
        args.backend = spec.backend
    result = _execute_spec(spec, args)
    if args.json:
        print(result.to_json(indent=2))
        return 0
    series = result.to_series()
    print(render_series(series))
    if args.plot:
        print()
        print(plot_series(series))
    return 0


def _run_check(args) -> int:
    """Run the static-analysis catalog (the ``check`` subcommand)."""
    # Imported lazily: the analysis rules are pure stdlib-AST code the
    # experiment subcommands never need.
    from repro.analysis import (
        render_report,
        render_rules,
        report_payload,
        run_check,
    )

    if args.list_rules:
        print(render_rules())
        return 0
    rules = None
    if args.rules is not None:
        rules = [key.strip() for key in args.rules.split(",") if key.strip()]
        if not rules:
            print("error: --rules got an empty list", file=sys.stderr)
            return 2
    paths = args.paths or ["src"]
    try:
        report = run_check(paths, rules=rules)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json is not None:
        text = json.dumps(report_payload(report), indent=2)
        if args.json == "-":
            print(text)
        else:
            pathlib.Path(args.json).write_text(text + "\n")
            print(f"wrote report {args.json}", file=sys.stderr)
            print(render_report(report, fix_hints=args.fix_hints))
    else:
        print(render_report(report, fix_hints=args.fix_hints))
    return 0 if report.ok else 1


def _load_trace(path: str) -> tuple[dict | None, int]:
    """Read + validate one trace document; ``(payload, exit_code)``.

    Forward-compatibility findings (a document or nested convergence
    payload declaring a schema version this build does not know) are
    printed as ``warning:`` lines and do not fail the load.
    """
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except FileNotFoundError:
        print(f"error: trace file not found: {path}", file=sys.stderr)
        return None, 2
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return None, 2
    warnings: list[str] = []
    try:
        validate_trace(payload, warnings=warnings)
    except ReproError as exc:
        print(f"error: invalid trace document: {exc}", file=sys.stderr)
        return None, 1
    for warning in warnings:
        print(f"warning: {path}: {warning}", file=sys.stderr)
    return payload, 0


def _view_trace(args) -> int:
    files = args.file
    if files[0] == "diff":
        if len(files) != 3:
            print(
                "error: 'repro trace diff' takes exactly two trace files",
                file=sys.stderr,
            )
            return 2
        payload_a, code = _load_trace(files[1])
        if payload_a is None:
            return code
        payload_b, code = _load_trace(files[2])
        if payload_b is None:
            return code
        print(render_diff(diff_traces(payload_a, payload_b), top=args.top))
        return 0
    if len(files) != 1:
        print(
            "error: 'repro trace' views one file (or 'diff A B')",
            file=sys.stderr,
        )
        return 2
    payload, code = _load_trace(files[0])
    if payload is None:
        return code
    if args.validate:
        schema = payload.get("schema", "repro-trace/v1")
        print(f"{files[0]}: valid {schema} document")
        return 0
    print(render_trace(payload, top=args.top, max_depth=args.depth))
    return 0


def _view_metrics(args) -> int:
    try:
        payload = json.loads(pathlib.Path(args.file).read_text())
    except FileNotFoundError:
        print(f"error: metrics file not found: {args.file}", file=sys.stderr)
        return 2
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read metrics: {exc}", file=sys.stderr)
        return 2
    warnings: list[str] = []
    try:
        validate_metrics(payload, warnings=warnings)
    except ReproError as exc:
        print(f"error: invalid metrics document: {exc}", file=sys.stderr)
        return 1
    for warning in warnings:
        print(f"warning: {args.file}: {warning}", file=sys.stderr)
    if args.validate:
        schema = payload.get("schema", "repro-metrics/v1")
        print(f"{args.file}: valid {schema} document")
        return 0
    snapshots = payload.get("snapshots") or []
    if not snapshots:
        print("metrics ring is empty (run ended before the first tick)")
        return 0
    latest = snapshots[-1]
    if args.prom:
        print(render_openmetrics(latest), end="")
        return 0
    first_ts = float(snapshots[0]["ts_unix"])
    last_ts = float(latest["ts_unix"])
    print(
        f"metrics {payload.get('schema', '?')}: {len(snapshots)} snapshot(s) "
        f"over {last_ts - first_ts:.1f}s "
        f"(interval {payload.get('interval_s', 0):g}s, "
        f"ring {payload.get('ring', '?')})"
    )
    progress = latest.get("progress")
    if progress:
        parts = [
            f"{int(progress.get('completed', 0))}/"
            f"{int(progress.get('total', 0))} jobs",
            f"{int(progress.get('cached', 0))} cached",
        ]
        if "rate_jobs_per_s" in progress:
            parts.append(f"{progress['rate_jobs_per_s']:.2f} jobs/s")
        if "eta_s" in progress:
            parts.append(f"eta {progress['eta_s']:.1f}s")
        print("progress: " + "  ".join(parts))
    for section in ("counters", "gauges"):
        metrics = latest.get(section) or {}
        if metrics:
            print(f"{section}:")
            for name, value in sorted(metrics.items()):
                print(f"  {name:<40} {value:g}")
    return 0


def _run_watch(args) -> int:
    """Tail a metrics ring file (the ``watch`` subcommand)."""
    try:
        return watch_loop(
            args.file,
            sys.stdout,
            interval=args.interval,
            once=args.once,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "run":
        return _run_spec_file(args)
    if args.experiment == "list":
        return _list_components(args)
    if args.experiment == "check":
        return _run_check(args)
    if args.experiment == "trace":
        return _view_trace(args)
    if args.experiment == "metrics":
        return _view_metrics(args)
    if args.experiment == "watch":
        return _run_watch(args)
    if args.experiment == "bench":
        # Imported lazily: the benchmark definitions import data
        # generators and attacks the other subcommands never need.
        from repro.bench.runner import main_bench

        return main_bench(args)

    if args.experiment in _FIGURES:
        config = SweepConfig(
            n_records=args.records,
            noise_std=args.noise_std,
            n_trials=args.trials,
            seed=args.seed,
        )
        spec = builtin_spec(args.experiment, config)
    else:
        spec = builtin_spec(args.experiment)
    series = _execute_spec(spec, args).to_series()
    print(render_series(series))
    if getattr(args, "plot", False):
        print()
        print(plot_series(series))
    return 0


if __name__ == "__main__":
    sys.exit(main())
